"""Unit tests for repro.serving.monitoring."""

import numpy as np
import pytest

from repro.serving.monitoring import (
    DriftMonitor,
    population_stability_index,
)


class TestPsi:
    def test_identical_distributions_near_zero(self, rng):
        reference = rng.normal(size=5000)
        live = rng.normal(size=5000)
        assert population_stability_index(reference, live) < 0.02

    def test_shifted_distribution_flagged(self, rng):
        reference = rng.normal(0, 1, size=5000)
        live = rng.normal(2, 1, size=5000)
        assert population_stability_index(reference, live) > 0.25

    def test_scale_change_flagged(self, rng):
        reference = rng.normal(0, 1, size=5000)
        live = rng.normal(0, 3, size=5000)
        assert population_stability_index(reference, live) > 0.1

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            population_stability_index(rng.normal(size=5), rng.normal(size=5))

    def test_rejects_single_bin(self, rng):
        with pytest.raises(ValueError, match="n_bins"):
            population_stability_index(
                rng.normal(size=100), rng.normal(size=100), n_bins=1
            )


class TestPsiDegenerateReference:
    """Regression: a constant/heavily-tied reference collapses every
    decile edge to one value, and the half-open ``searchsorted`` bins
    then put "equal to the edge" and "below the edge" in the same bin —
    an upward live shift was flagged while the mirror-image downward
    shift scored exactly 0.0.
    """

    def test_constant_reference_identical_live_is_stable(self):
        reference = np.full(100, 5.0)
        live = np.full(80, 5.0)
        assert population_stability_index(reference, live) < 0.01

    def test_constant_reference_downward_shift_flagged(self):
        reference = np.full(100, 5.0)
        live = np.full(80, 1.0)  # scored 0.0 before the fix
        assert population_stability_index(reference, live) > 0.25

    def test_constant_reference_upward_shift_flagged(self):
        reference = np.full(100, 5.0)
        live = np.full(80, 9.0)
        assert population_stability_index(reference, live) > 0.25

    def test_constant_reference_shift_is_symmetric(self):
        reference = np.full(100, 5.0)
        below = population_stability_index(reference, np.full(80, 1.0))
        above = population_stability_index(reference, np.full(80, 9.0))
        assert below == pytest.approx(above)

    def test_tied_reference_with_shifted_live_flagged(self):
        # >90 % ties: all interior deciles land on the tied value.
        reference = np.concatenate([np.full(95, 5.0), [1.0] * 5])
        live = np.full(80, 2.0)
        assert population_stability_index(reference, live) > 0.25

    def test_spread_reference_unaffected_by_fix(self, rng):
        # Sanity: the non-degenerate path still behaves as before.
        reference = rng.normal(0, 1, size=5000)
        assert population_stability_index(reference, reference) < 1e-12


class TestDriftMonitor:
    def test_no_alert_when_accurate(self):
        monitor = DriftMonitor(threshold_days=5.0, min_samples=3)
        for _ in range(10):
            monitor.record("v01", 10.0, 9.0)
        assert monitor.check("v01") is None
        assert monitor.alerts() == []

    def test_alert_when_degraded(self):
        monitor = DriftMonitor(threshold_days=5.0, min_samples=3)
        for _ in range(10):
            monitor.record("v01", 30.0, 10.0)
        alert = monitor.check("v01")
        assert alert is not None
        assert alert.mean_abs_error == pytest.approx(20.0)
        assert "v01" in str(alert)

    def test_min_samples_gate(self):
        monitor = DriftMonitor(threshold_days=1.0, min_samples=5)
        for _ in range(4):
            monitor.record("v01", 100.0, 0.0)
        assert monitor.check("v01") is None

    def test_rolling_window_forgets_old_errors(self):
        monitor = DriftMonitor(threshold_days=5.0, window=5, min_samples=3)
        for _ in range(10):
            monitor.record("v01", 30.0, 0.0)  # terrible
        for _ in range(5):
            monitor.record("v01", 10.0, 10.0)  # perfect, fills the window
        assert monitor.check("v01") is None

    def test_bias_is_signed(self):
        monitor = DriftMonitor()
        monitor.record("v01", 10.0, 15.0)  # over-prediction
        monitor.record("v01", 10.0, 13.0)
        assert monitor.bias("v01") == pytest.approx(-4.0)
        assert monitor.mean_abs_error("v01") == pytest.approx(4.0)

    def test_alerts_sorted_worst_first(self):
        monitor = DriftMonitor(threshold_days=1.0, min_samples=1)
        monitor.record("mild", 5.0, 2.0)
        monitor.record("bad", 50.0, 2.0)
        alerts = monitor.alerts()
        assert [a.vehicle_id for a in alerts] == ["bad", "mild"]

    def test_record_many_skips_nan(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.record_many("v01", [np.nan, 5.0], [1.0, 4.0])
        assert monitor.summary()["v01"]["n"] == 1

    def test_record_rejects_nonfinite(self):
        monitor = DriftMonitor()
        with pytest.raises(ValueError):
            monitor.record("v01", np.nan, 1.0)

    def test_summary_shape(self):
        monitor = DriftMonitor()
        monitor.record("a", 1.0, 1.0)
        summary = monitor.summary()
        assert set(summary["a"]) == {"n", "mae", "bias"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold_days": 0.0},
            {"window": 0},
            {"min_samples": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            DriftMonitor(**kwargs)


class TestStrategyAttribution:
    """Degraded serving must stay observable: resolved residuals carry
    the strategy that produced the forecast, so a drifting MAE can be
    attributed to (say) baseline fallbacks rather than the real model."""

    def test_record_tags_strategy(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.record("v01", 10.0, 9.0, strategy="per-vehicle")
        monitor.record("v01", 10.0, 2.0, strategy="baseline")
        monitor.record("v01", 10.0, 3.0, strategy="baseline")
        assert monitor.strategy_counts("v01") == {
            "per-vehicle": 1,
            "baseline": 2,
        }

    def test_untagged_records_still_work(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.record("v01", 10.0, 9.0)
        assert monitor.strategy_counts("v01") == {}
        assert monitor.summary()["v01"]["n"] == 1

    def test_unknown_vehicle_empty(self):
        assert DriftMonitor().strategy_counts("ghost") == {}

    def test_fallback_residuals_resolved_through_service(self):
        """End to end: with every trainer failing, served forecasts are
        baseline fallbacks — and once their cycles complete, the monitor
        attributes every resolved residual to the baseline strategy."""
        from repro.serving.faults import (
            FaultInjector,
            faulty_predictor_factory,
        )
        from repro.serving.reliability import CircuitBreaker
        from repro.serving.service import MaintenancePredictionService

        injector = FaultInjector(seed=0, rates={"train": 1.0})
        monitor = DriftMonitor(min_samples=1)
        service = MaintenancePredictionService(
            t_v=200_000.0,
            window=0,
            algorithm="LR",
            monitor=monitor,
            breaker=CircuitBreaker(),
            predictor_factory=faulty_predictor_factory(injector),
        )
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        assert service.predict("v01").strategy == "baseline"
        service.ingest_series("v01", [20_000.0] * 10)  # resolves the cycle
        counts = monitor.strategy_counts("v01")
        assert set(counts) == {"baseline"}
        assert counts["baseline"] == 1
        assert monitor.summary()["v01"]["n"] == 1

    def test_psi_well_defined_on_fallback_only_forecasts(self):
        """Baseline forecasts for a steady vehicle are near-constant;
        the degenerate-reference PSI path must still yield a finite
        score rather than NaN/inf."""
        reference = np.full(40, 5.0)  # all-baseline reference window
        stable = np.full(40, 5.0)
        shifted = np.full(40, 11.0)
        assert np.isfinite(population_stability_index(reference, stable))
        score = population_stability_index(reference, shifted)
        assert np.isfinite(score) and score > 0.25


class TestAlertDebounce:
    def make(self) -> DriftMonitor:
        return DriftMonitor(
            threshold_days=1.0, window=10, min_samples=3, alert_cooldown=4
        )

    def degrade(self, monitor, vehicle_id, n=3):
        for _ in range(n):
            monitor.record(vehicle_id, 10.0, 0.0)

    def test_fire_marks_and_suppresses_refires(self):
        monitor = self.make()
        self.degrade(monitor, "v01")
        assert [a.vehicle_id for a in monitor.fire_alerts()] == ["v01"]
        # Still degraded but no new evidence: suppressed, not re-fired.
        assert monitor.fire_alerts() == []
        assert monitor.still_degraded("v01") == 1
        # The pure view keeps reporting throughout.
        assert [a.vehicle_id for a in monitor.alerts()] == ["v01"]

    def test_refires_after_cooldown_new_residuals(self):
        monitor = self.make()
        self.degrade(monitor, "v01")
        monitor.fire_alerts()
        self.degrade(monitor, "v01", n=3)  # 3 < alert_cooldown=4
        assert monitor.fire_alerts() == []
        self.degrade(monitor, "v01", n=1)  # fresh-evidence bar reached
        assert [a.vehicle_id for a in monitor.fire_alerts()] == ["v01"]

    def test_counters_expose_suppression(self):
        monitor = self.make()
        self.degrade(monitor, "v01")
        self.degrade(monitor, "v02")
        monitor.fire_alerts()
        monitor.fire_alerts()
        monitor.fire_alerts()
        counters = monitor.counters()
        assert counters["alerts_suppressed"] == 4
        assert counters["still_degraded_vehicles"] == 2
        assert monitor.still_degraded() == 4

    def test_reset_clears_debounce_state(self):
        monitor = self.make()
        self.degrade(monitor, "v01")
        monitor.fire_alerts()
        monitor.fire_alerts()
        monitor.reset("v01")
        assert monitor.still_degraded("v01") == 0
        self.degrade(monitor, "v01")  # the new model's own evidence
        assert [a.vehicle_id for a in monitor.fire_alerts()] == ["v01"]

    def test_cooldown_is_per_vehicle(self):
        monitor = self.make()
        self.degrade(monitor, "v01")
        monitor.fire_alerts()
        self.degrade(monitor, "v02")
        # v01 is in cooldown; v02's first alert still fires.
        assert [a.vehicle_id for a in monitor.fire_alerts()] == ["v02"]


class TestIncrementalSums:
    """The O(1) running sums must stay exact through window evictions."""

    def test_matches_numpy_after_evictions(self):
        rng = np.random.default_rng(3)
        monitor = DriftMonitor(threshold_days=1.0, window=8, min_samples=1)
        residuals = rng.normal(0.0, 5.0, size=50)
        for r in residuals:
            monitor.record("v01", float(r), 0.0)
        window = residuals[-8:]
        assert monitor.mean_abs_error("v01") == pytest.approx(
            float(np.mean(np.abs(window))), rel=1e-12
        )
        assert monitor.bias("v01") == pytest.approx(
            float(np.mean(window)), rel=1e-12
        )

    def test_state_roundtrip_preserves_sums(self):
        rng = np.random.default_rng(4)
        monitor = DriftMonitor(threshold_days=1.0, window=6, min_samples=1)
        for r in rng.normal(0.0, 3.0, size=25):
            monitor.record("v01", float(r), 0.0)
        restored = DriftMonitor.from_state(monitor.state_dict())
        # The rebuilt sums come from the persisted window alone, so they
        # can differ from the long-running accumulation by round-off —
        # but only by round-off.
        assert restored.mean_abs_error("v01") == pytest.approx(
            monitor.mean_abs_error("v01"), rel=1e-12
        )
        assert restored.bias("v01") == pytest.approx(
            monitor.bias("v01"), rel=1e-9, abs=1e-12
        )
        # Sums keep tracking after the round-trip, evictions included.
        for r in rng.normal(0.0, 3.0, size=10):
            monitor.record("v01", float(r), 0.0)
            restored.record("v01", float(r), 0.0)
        assert restored.mean_abs_error("v01") == pytest.approx(
            monitor.mean_abs_error("v01"), rel=1e-12
        )
