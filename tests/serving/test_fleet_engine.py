"""Serial-equivalence suite for the batch fleet engine.

The engine's correctness contract is that caching and parallelism are
pure scheduling changes: for any fleet, batch/parallel/cached
predictions must be *identical* (exact float equality, not approx) to
the serial :class:`MaintenancePredictionService` path.
"""

import sys
import threading
import time

import numpy as np
import pytest

from repro.core.cycles import derive_series
from repro.serving.cycle_cache import CycleStateCache
from repro.serving.engine import EngineConfig, FleetEngine
from repro.serving.executor import FleetExecutor
from repro.serving.service import MaintenancePredictionService

T_V = 200_000.0


def random_fleet(seed: int) -> dict[str, np.ndarray]:
    """A mixed fleet: several old, some semi-new, some new vehicles."""
    rng = np.random.default_rng(seed)
    fleet: dict[str, np.ndarray] = {}
    for i in range(int(rng.integers(2, 5))):
        days = int(rng.integers(22, 45))
        fleet[f"old{i}"] = rng.uniform(14_000, 26_000, size=days)
    for i in range(int(rng.integers(1, 4))):
        fleet[f"semi{i}"] = rng.uniform(17_000, 25_000, size=int(rng.integers(5, 9)))
    for i in range(int(rng.integers(1, 3))):
        fleet[f"new{i}"] = rng.uniform(5_000, 20_000, size=int(rng.integers(1, 4)))
    return fleet


def build_serial(usage_map, **kwargs) -> MaintenancePredictionService:
    service = MaintenancePredictionService(t_v=T_V, **kwargs)
    for vehicle_id in sorted(usage_map):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage_map[vehicle_id])
    return service


def serial_forecasts(service):
    return [
        service.predict(vehicle_id)
        for vehicle_id in service.vehicle_ids
        if service.series(vehicle_id).n_days > service.window
    ]


def build_engine(usage_map, config, **kwargs) -> FleetEngine:
    engine = FleetEngine(t_v=T_V, config=config, **kwargs)
    engine.register_fleet(usage_map)
    for vehicle_id in sorted(usage_map):
        engine.ingest_history(vehicle_id, usage_map[vehicle_id])
    return engine


class TestSerialEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_predict_all_identical_to_serial(self, seed, max_workers):
        usage_map = random_fleet(seed)
        reference = serial_forecasts(
            build_serial(usage_map, window=0, algorithm="LR")
        )
        engine = build_engine(
            usage_map,
            EngineConfig(max_workers=max_workers),
            window=0,
            algorithm="LR",
        )
        assert engine.predict_all() == reference

    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_multivariate_rf_identical_to_serial(self, max_workers):
        usage_map = random_fleet(3)
        reference = serial_forecasts(
            build_serial(usage_map, window=3, algorithm="RF")
        )
        engine = build_engine(
            usage_map,
            EngineConfig(max_workers=max_workers),
            window=3,
            algorithm="RF",
        )
        assert engine.predict_all() == reference

    def test_process_pool_training_identical_to_serial(self):
        usage_map = random_fleet(4)
        reference = serial_forecasts(
            build_serial(usage_map, window=0, algorithm="RF")
        )
        engine = build_engine(
            usage_map,
            EngineConfig(max_workers=2, executor="process"),
            window=0,
            algorithm="RF",
        )
        assert engine.predict_all() == reference

    def test_repeated_ingest_predict_cycles_stay_identical(self):
        """Interleaved daily ingest + batch prediction matches serial."""
        usage_map = random_fleet(5)
        rng = np.random.default_rng(99)
        extra = {v: rng.uniform(12_000, 24_000, size=6) for v in usage_map}
        serial = build_serial(usage_map, window=0, algorithm="LR")
        engine = build_engine(
            usage_map, EngineConfig(max_workers=4), window=0, algorithm="LR"
        )
        for day in range(6):
            today = {v: extra[v][day] for v in usage_map}
            for vehicle_id in sorted(today):
                serial.ingest(vehicle_id, float(today[vehicle_id]))
            engine.ingest_day(today)
            assert engine.predict_all() == serial_forecasts(serial)


class TestResilientCleanPathEquivalence:
    """The reliability layer's core contract: on clean data with no
    injected faults, a fully armed resilient stack (guard + breaker +
    retry + zero-rate injector) produces bit-identical forecasts to the
    plain serial service."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_full_reliability_stack_is_invisible_on_clean_data(
        self, seed, max_workers
    ):
        from repro.serving.faults import (
            FaultInjector,
            faulty_predictor_factory,
        )
        from repro.serving.reliability import (
            CircuitBreaker,
            IngestionGuard,
            RetryPolicy,
        )

        usage_map = random_fleet(seed)
        reference = serial_forecasts(
            build_serial(usage_map, window=0, algorithm="LR")
        )
        injector = FaultInjector(seed=seed)  # no rates: never fires
        engine = build_engine(
            usage_map,
            EngineConfig(max_workers=max_workers),
            window=0,
            algorithm="LR",
            guard=IngestionGuard(),
            breaker=CircuitBreaker(),
            retry=RetryPolicy(attempts=3, sleep=lambda _s: None),
            predictor_factory=faulty_predictor_factory(injector),
        )
        forecasts = engine.predict_all()
        assert forecasts == reference
        assert not any(f.degraded for f in forecasts)
        health = engine.health()
        assert health.total_anomalies() == {}
        assert health.breaker_failures() == 0
        assert health.persist_failures == 0
        assert sum(injector.injected.values()) == 0

    def test_resilient_interleaved_ingest_predict_stays_identical(self):
        from repro.serving.reliability import CircuitBreaker, IngestionGuard

        usage_map = random_fleet(5)
        rng = np.random.default_rng(99)
        extra = {v: rng.uniform(12_000, 24_000, size=6) for v in usage_map}
        serial = build_serial(usage_map, window=0, algorithm="LR")
        engine = build_engine(
            usage_map,
            EngineConfig(max_workers=4),
            window=0,
            algorithm="LR",
            guard=IngestionGuard(),
            breaker=CircuitBreaker(),
        )
        for day in range(6):
            today = {v: extra[v][day] for v in usage_map}
            for vehicle_id in sorted(today):
                serial.ingest(vehicle_id, float(today[vehicle_id]))
            engine.ingest_day(today)
            assert engine.predict_all() == serial_forecasts(serial)


class TestEngineBehavior:
    def test_forecasts_sorted_by_vehicle_id(self):
        usage_map = random_fleet(6)
        engine = build_engine(
            usage_map, EngineConfig(max_workers=4), window=0, algorithm="LR"
        )
        forecasts = engine.predict_all()
        ids = [f.vehicle_id for f in forecasts]
        assert ids == sorted(ids)

    def test_skip_unready_vehicles(self):
        usage_map = {"v1": np.full(25, 20_000.0), "v2": np.zeros(0)}
        engine = build_engine(
            usage_map, EngineConfig(max_workers=2), window=0, algorithm="LR"
        )
        assert [f.vehicle_id for f in engine.predict_all()] == ["v1"]
        with pytest.raises(ValueError):
            engine.predict_all(skip_unready=False)

    def test_refresh_models_counts_and_caches(self):
        usage_map = random_fleet(7)
        engine = build_engine(
            usage_map, EngineConfig(max_workers=2), window=0, algorithm="LR"
        )
        n_old = sum(1 for v in usage_map if v.startswith("old"))
        assert engine.refresh_models() == n_old
        assert engine.refresh_models() == 0  # all warm now

    def test_predict_many_subset(self):
        usage_map = random_fleet(8)
        serial = build_serial(usage_map, window=0, algorithm="LR")
        old_ids = sorted(v for v in usage_map if v.startswith("old"))
        reference = [serial.predict(v) for v in old_ids]
        engine = build_engine(
            usage_map, EngineConfig(max_workers=4), window=0, algorithm="LR"
        )
        assert engine.predict_many(old_ids) == reference

    def test_cache_stats_exposed(self):
        usage_map = random_fleet(9)
        engine = build_engine(
            usage_map, EngineConfig(max_workers=1), window=0, algorithm="LR"
        )
        engine.predict_all()
        stats = engine.cache_stats
        assert stats is not None and stats["hits"] > 0

    def test_engine_without_cache(self):
        usage_map = random_fleet(10)
        reference = serial_forecasts(
            build_serial(usage_map, window=0, algorithm="LR")
        )
        engine = build_engine(
            usage_map,
            EngineConfig(max_workers=2, use_cycle_cache=False),
            window=0,
            algorithm="LR",
        )
        assert engine.service.cycle_cache is None
        assert engine.predict_all() == reference

    def test_rejects_service_kwargs_with_service(self):
        service = MaintenancePredictionService(t_v=T_V)
        with pytest.raises(ValueError, match="service_kwargs"):
            FleetEngine(service, window=3)


class TestCycleStateCache:
    def test_append_path_matches_full_derivation(self):
        cache = CycleStateCache()
        rng = np.random.default_rng(0)
        usage = rng.uniform(0, 30_000, size=60)
        for n in range(1, usage.size + 1):
            bundle = cache.bundle("v", usage[:n], T_V)
            full = derive_series(usage[:n], T_V)
            assert bundle.cycles == full.cycles
            assert np.array_equal(
                bundle.usage_left, full.usage_left, equal_nan=True
            )
            assert np.array_equal(
                bundle.days_to_maintenance,
                full.days_to_maintenance,
                equal_nan=True,
            )
        stats = cache.stats
        assert stats.misses == 1 and stats.hits == usage.size - 1

    def test_invalidation_on_truncation(self):
        cache = CycleStateCache()
        usage = np.full(30, 10_000.0)
        cache.bundle("v", usage, T_V)
        bundle = cache.bundle("v", usage[:10], T_V)  # history rewound
        assert bundle.n_days == 10
        assert cache.stats.invalidations == 1
        assert np.array_equal(
            bundle.usage_left,
            derive_series(usage[:10], T_V).usage_left,
            equal_nan=True,
        )

    def test_invalidation_on_last_day_rewrite(self):
        cache = CycleStateCache()
        usage = np.full(30, 10_000.0)
        cache.bundle("v", usage, T_V)
        rewritten = usage.copy()
        rewritten[-1] = 25_000.0
        bundle = cache.bundle("v", rewritten, T_V)
        assert cache.stats.invalidations == 1
        assert np.array_equal(
            bundle.usage_left,
            derive_series(rewritten, T_V).usage_left,
            equal_nan=True,
        )

    def test_invalidation_on_budget_change(self):
        cache = CycleStateCache()
        usage = np.full(30, 10_000.0)
        cache.bundle("v", usage, T_V)
        bundle = cache.bundle("v", usage, T_V / 2)
        assert cache.stats.invalidations == 1
        assert bundle.t_v == T_V / 2

    def test_explicit_invalidate(self):
        cache = CycleStateCache()
        usage = np.full(10, 10_000.0)
        cache.bundle("v", usage, T_V)
        cache.invalidate("v")
        cache.bundle("v", usage, T_V)
        assert cache.stats.misses == 2

    def test_stats_exact_under_concurrent_bundles(self):
        # Regression for the cache-stats race: per-entry locks serialize
        # one vehicle's *state*, but threads on different vehicles used
        # to mutate the shared counters with bare ``+=`` and lose
        # increments.  On GIL builds a plain ``+=`` only tears when a
        # switch lands inside the load->add->store window, so the test
        # seeds the counters with an int subclass whose addition yields
        # the GIL — every increment becomes a preemption point.  The
        # dedicated stats lock must keep totals exact anyway; the
        # pre-fix code loses most increments under this schedule.
        class YieldingInt(int):
            def __add__(self, other):
                time.sleep(0)  # drop the GIL mid-increment
                return YieldingInt(int(self) + int(other))

            __radd__ = __add__

        cache = CycleStateCache()
        for name in ("hits", "misses", "invalidations", "appended_days"):
            setattr(cache.stats, name, YieldingInt(0))
        n_threads, rounds = 8, 150
        start = threading.Barrier(n_threads)
        errors = []

        def worker(index: int) -> None:
            vehicle_id = f"v{index}"
            usage = np.full(rounds + 1, 10_000.0)
            try:
                start.wait()
                for n in range(1, rounds + 1):
                    cache.bundle(vehicle_id, usage[:n], T_V)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # aggressive preemption besides
        try:
            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(switch)
        assert not errors
        stats = {k: int(v) for k, v in cache.stats.as_dict().items()}
        # Each thread: 1 miss (first call) then rounds-1 hits, one
        # appended day per call.
        assert stats["misses"] == n_threads
        assert stats["hits"] == n_threads * (rounds - 1)
        assert stats["hits"] + stats["misses"] == n_threads * rounds
        assert stats["appended_days"] == n_threads * rounds
        assert stats["invalidations"] == 0


class TestFleetExecutor:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FleetExecutor(kind="fiber")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="max_workers"):
            FleetExecutor(max_workers=0)

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_map_ordered_preserves_order(self, kind):
        executor = FleetExecutor(max_workers=4, kind=kind)
        items = list(range(20))
        try:
            assert executor.map_ordered(_square, items) == [
                i * i for i in items
            ]
        finally:
            executor.close()

    def test_pool_persists_across_calls(self):
        # Regression for pool churn: map_ordered used to build and tear
        # down a fresh ThreadPoolExecutor per call.  The same executor
        # must serve repeated calls from one pool — same pool object,
        # same worker threads, no respawning.
        with FleetExecutor(max_workers=2, kind="thread") as executor:
            first = set(executor.map_ordered(_worker_ident, range(8)))
            pool = executor._pool
            assert pool is not None
            second = set(executor.map_ordered(_worker_ident, range(8)))
            assert executor._pool is pool
            # Every item of both calls ran on a thread owned by the one
            # persistent pool.  (Not `first == second`: the stdlib pool
            # spawns threads lazily and a fast worker may drain a whole
            # call alone, so the per-call ident sets can differ.)
            pool_idents = {t.ident for t in pool._threads}
            assert first <= pool_idents
            assert second <= pool_idents
        assert executor.closed

    def test_serial_calls_never_build_a_pool(self):
        executor = FleetExecutor(max_workers=4, kind="thread")
        assert executor.map_ordered(_square, [3]) == [9]  # 1 item: serial
        assert executor._pool is None
        serial = FleetExecutor(kind="serial")
        assert serial.map_ordered(_square, range(10)) == [
            i * i for i in range(10)
        ]
        assert serial._pool is None

    def test_close_is_idempotent_and_rejects_work(self):
        executor = FleetExecutor(max_workers=2, kind="thread")
        executor.map_ordered(_square, range(4))
        executor.close()
        executor.close()
        assert executor.closed
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_ordered(_square, range(4))

    def test_parallel_results_match_serial(self):
        items = list(range(37))
        expected = [_square(i) for i in items]
        with FleetExecutor(max_workers=3, kind="thread") as executor:
            for _ in range(3):
                assert executor.map_ordered(_square, items) == expected


def _square(x):
    return x * x


def _worker_ident(_item):
    return threading.get_ident()
