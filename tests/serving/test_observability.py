"""Observability contract of the serving stack.

Three guarantees pinned here:

* every gateway response — success, 429, 504, degraded — carries a
  request id usable against ``/v1/trace/{request_id}``;
* a forced circuit-breaker/ladder fallback leaves a ``fallback`` span
  event whose ``fallback_reason`` matches the served ``Forecast``;
* the JSON shapes of ``/v1/metrics``, ``/v1/trace/{id}`` and the
  event-log lines are golden — downstream dashboards parse them
  without a schema, so key sets and orderings are asserted exactly.
"""

import asyncio
import json

import numpy as np

from repro.serving import (
    CircuitBreaker,
    EngineConfig,
    FleetEngine,
    IngestionGuard,
    MaintenancePredictionService,
)
from repro.serving.faults import FaultInjector, faulty_predictor_factory
from repro.serving.gateway import (
    DEGRADED_HEADER,
    REQUEST_ID_HEADER,
    FleetGateway,
    GatewayConfig,
)
from repro.serving.monitoring import DriftMonitor

T_V = 200_000.0
ID_HEADER_KEY = REQUEST_ID_HEADER.lower()  # handle_request sees lowercase


def fleet_usage(n_vehicles: int = 3, n_days: int = 25):
    rng = np.random.default_rng(11)
    return {
        f"v{i:02d}": rng.uniform(15_000, 25_000, size=n_days)
        for i in range(n_vehicles)
    }


def build_engine(**service_kwargs) -> FleetEngine:
    engine = FleetEngine(
        t_v=T_V, window=0, algorithm="LR", **service_kwargs
    )
    usage = fleet_usage()
    engine.register_fleet(usage)
    for vehicle_id, series in usage.items():
        engine.ingest_history(vehicle_id, series)
    return engine


def build_degraded_engine() -> FleetEngine:
    """Every trainer fails, so predictions walk the Section-4 ladder
    down to the baseline and serve a degraded, reasoned forecast."""
    injector = FaultInjector(seed=0, rates={"train": 1.0})
    service = MaintenancePredictionService(
        t_v=T_V,
        window=0,
        algorithm="LR",
        guard=IngestionGuard(),
        breaker=CircuitBreaker(),
        predictor_factory=faulty_predictor_factory(injector),
    )
    engine = FleetEngine(
        service, config=EngineConfig(max_workers=1, executor="serial")
    )
    usage = fleet_usage()
    engine.register_fleet(usage)
    for vehicle_id, series in usage.items():
        engine.ingest_history(vehicle_id, series)
    return engine


async def started_gateway(config=None, engine=None, **start_kwargs):
    gateway = FleetGateway(
        engine if engine is not None else build_engine(),
        config or GatewayConfig(),
    )
    await gateway.start(**start_kwargs)
    return gateway


def run(coro):
    return asyncio.run(coro)


def all_events(trace: dict) -> list[dict]:
    return [event for span in trace["spans"] for event in span["events"]]


class TestRequestIdOnEveryResponse:
    def test_success_and_error_responses_carry_ids(self):
        async def scenario():
            gateway = await started_gateway()
            responses = [
                await gateway.handle_request("GET", "/v1/predict/v00"),
                await gateway.handle_request("GET", "/nope"),  # 404
                await gateway.handle_request("POST", "/v1/health"),  # 405
                await gateway.handle_request(
                    "POST", "/v1/ingest", b"{broken"
                ),  # 400
            ]
            await gateway.shutdown()
            return responses

        responses = run(scenario())
        assert [r.status for r in responses] == [200, 404, 405, 400]
        for response in responses:
            assert response.headers[REQUEST_ID_HEADER]

    def test_client_supplied_id_is_echoed(self):
        async def scenario():
            gateway = await started_gateway()
            good = await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "client-id-42"},
            )
            bad = await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "not valid: spaces!"},
            )
            await gateway.shutdown()
            return good, bad

        good, bad = run(scenario())
        assert good.headers[REQUEST_ID_HEADER] == "client-id-42"
        replaced = bad.headers[REQUEST_ID_HEADER]
        assert replaced and replaced != "not valid: spaces!"

    def test_429_rejection_carries_id(self):
        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(max_queue=1, batch_window_s=0.0),
                dispatch=False,  # queue fills; nothing drains it yet
            )
            tasks = [
                asyncio.create_task(
                    gateway.handle_request("GET", "/v1/predict/v00")
                )
                for _ in range(3)
            ]
            for _ in range(3):
                await asyncio.sleep(0)
            rejected = [
                task.result() for task in tasks if task.done()
            ]
            gateway.start_dispatcher()
            await asyncio.gather(*(t for t in tasks if not t.done()))
            await gateway.shutdown()
            return rejected

        rejected = run(scenario())
        assert rejected and all(r.status == 429 for r in rejected)
        for response in rejected:
            assert response.headers[REQUEST_ID_HEADER]

    def test_504_deadline_carries_id_and_span_event(self):
        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(batch_window_s=0.005), dispatch=False
            )
            doomed = asyncio.create_task(
                gateway.handle_request(
                    "GET", "/v1/predict/v00?deadline_ms=1",
                    headers={ID_HEADER_KEY: "req-doomed"},
                )
            )
            await asyncio.sleep(0.05)  # let the deadline lapse
            gateway.start_dispatcher()
            response = await doomed
            trace = gateway.obs.tracer.export("req-doomed")
            await gateway.shutdown()
            return response, trace

        response, trace = run(scenario())
        assert response.status == 504
        assert response.headers[REQUEST_ID_HEADER] == "req-doomed"
        names = [event["name"] for event in all_events(trace)]
        assert "deadline-expired" in names

    def test_degraded_response_carries_id(self):
        async def scenario():
            gateway = await started_gateway(engine=build_degraded_engine())
            response = await gateway.handle_request(
                "GET", "/v1/predict/v00"
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200
        assert response.headers[DEGRADED_HEADER] == "true"
        assert response.headers[REQUEST_ID_HEADER]

    def test_tracing_disabled_still_assigns_ids(self):
        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(tracing=False)
            )
            response = await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "untraced-1"},
            )
            trace = await gateway.handle_request(
                "GET", "/v1/trace/untraced-1"
            )
            await gateway.shutdown()
            return response, trace

        response, trace = run(scenario())
        assert response.status == 200
        assert response.headers[REQUEST_ID_HEADER] == "untraced-1"
        assert trace.status == 404  # nothing recorded while disabled


class TestTracePropagation:
    def test_predict_trace_spans_gateway_to_engine(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "req-trace-1"},
            )
            trace_response = await gateway.handle_request(
                "GET", "/v1/trace/req-trace-1"
            )
            await gateway.shutdown()
            return response, trace_response

        response, trace_response = run(scenario())
        assert response.status == 200
        assert trace_response.status == 200
        trace = trace_response.payload
        assert trace["request_id"] == "req-trace-1"
        by_name = {span["name"]: span for span in trace["spans"]}
        root = by_name["GET /v1/predict/v00"]
        assert root["parent_id"] is None
        assert root["attributes"]["endpoint"] == "predict"
        assert root["attributes"]["status"] == 200
        # The micro-batch hop: the engine recorded this request's
        # service.predict call as a child of its root, so the chain is
        # unbroken even though one predict_many served the batch.
        engine_span = by_name["engine.predict"]
        assert engine_span["attributes"]["vehicle_id"] == "v00"
        assert engine_span["parent_id"] == root["span_id"]
        assert engine_span["status"] == "ok"
        assert engine_span["duration_ms"] >= 0.0
        assert root["attributes"]["queue_depth"] >= 1

    def test_anonymous_traffic_is_head_sampled(self):
        """Anonymous requests are traced 1-in-``trace_sample_every``;
        a client-supplied id forces tracing regardless of the tick."""

        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(trace_sample_every=4)
            )
            for _ in range(8):
                await gateway.handle_request("GET", "/v1/predict/v00")
            forced = await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "req-forced"},
            )
            anonymous_traces = len(gateway.obs.tracer.request_ids()) - 1
            forced_trace = await gateway.handle_request(
                "GET", "/v1/trace/req-forced"
            )
            await gateway.shutdown()
            return forced, anonymous_traces, forced_trace

        forced, anonymous_traces, forced_trace = run(scenario())
        assert forced.status == 200
        # 8 anonymous requests at 1-in-4 sampling -> exactly 2 traces
        # (the tick is deterministic, starting at 0).
        assert anonymous_traces == 2
        assert forced_trace.status == 200
        names = {span["name"] for span in forced_trace.payload["spans"]}
        assert "engine.predict" in names

    def test_unknown_trace_404(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request(
                "GET", "/v1/trace/never-seen"
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 404
        assert response.headers[REQUEST_ID_HEADER]

    def test_fallback_event_matches_forecast_reason(self):
        """Forced ladder fallback: the ``fallback`` span event's
        ``fallback_reason`` attribute is exactly the reason served in
        the Forecast body."""

        async def scenario():
            gateway = await started_gateway(engine=build_degraded_engine())
            response = await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "req-degraded"},
            )
            trace_response = await gateway.handle_request(
                "GET", "/v1/trace/req-degraded"
            )
            await gateway.shutdown()
            return response, trace_response

        response, trace_response = run(scenario())
        forecast = response.payload
        assert forecast["degraded"] is True
        assert forecast["fallback_reason"]
        fallbacks = [
            event
            for event in all_events(trace_response.payload)
            if event["name"] == "fallback"
        ]
        assert len(fallbacks) == 1
        attributes = fallbacks[0]["attributes"]
        assert attributes["vehicle_id"] == "v00"
        assert attributes["fallback_reason"] == forecast["fallback_reason"]
        assert attributes["strategy"] == forecast["strategy"]


class TestGoldenSchemas:
    """Exact key sets of the public JSON surfaces."""

    METRICS_SECTIONS = {
        "counters",
        "gauges",
        "histograms",
        "gateway",
        "fleet",
        "drift",
        "cache",
        "kernel",
        "tracing",
        "events",
    }
    GATEWAY_KEYS = {
        "requests",
        "errors",
        "responses",
        "latency_s",
        "batch",
        "queue_high_water",
        "queue_rejections",
        "deadline_expirations",
    }
    SPAN_KEYS = {
        "span_id",
        "parent_id",
        "name",
        "start_ms",
        "duration_ms",
        "status",
        "attributes",
        "events",
    }
    EVENT_KEYS = {"name", "offset_ms", "attributes"}
    HISTOGRAM_KEYS = {"count", "mean", "max", "p50", "p95", "p99"}

    def _traffic(self):
        async def scenario():
            engine = build_engine(monitor=DriftMonitor(min_samples=1))
            gateway = await started_gateway(engine=engine)
            await gateway.handle_request(
                "GET", "/v1/predict/v00",
                headers={ID_HEADER_KEY: "golden-req"},
            )
            metrics = await gateway.handle_request("GET", "/v1/metrics")
            trace = await gateway.handle_request(
                "GET", "/v1/trace/golden-req"
            )
            jsonl = gateway.obs.events.to_jsonl()
            await gateway.shutdown()
            return metrics, trace, jsonl

        return run(scenario())

    def test_metrics_payload_shape(self):
        metrics, _, _ = self._traffic()
        assert metrics.status == 200
        payload = metrics.payload
        assert set(payload) == self.METRICS_SECTIONS
        assert set(payload["gateway"]) == self.GATEWAY_KEYS
        assert set(payload["gateway"]["batch"]) == {"sizes", "exec_s"}
        assert set(payload["tracing"]) == {
            "enabled",
            "capacity",
            "traces_held",
            "traces_started",
            "traces_evicted",
            "spans_recorded",
        }
        assert set(payload["events"]) == {
            "capacity", "emitted", "held", "dropped",
        }
        assert set(payload["fleet"]) == {
            "vehicles",
            "anomalies",
            "anomalies_total",
            "quarantined",
            "degraded_serves",
            "breaker_failures",
            "persist_failures",
            "dead_letter_overflow",
        }
        assert set(payload["drift"]) == {
            "vehicles_tracked",
            "residuals_recorded",
            "residuals_held",
            "resolved_by_strategy",
            "alerts",
            "alerts_suppressed",
            "still_degraded_vehicles",
            "threshold_days",
        }
        for summary in payload["histograms"].values():
            if summary["count"]:
                assert set(summary) == self.HISTOGRAM_KEYS

    def test_trace_payload_shape(self):
        _, trace, _ = self._traffic()
        assert trace.status == 200
        payload = trace.payload
        assert set(payload) == {"request_id", "spans"}
        assert payload["spans"], "trace must hold at least the root span"
        for span in payload["spans"]:
            assert set(span) == self.SPAN_KEYS
            for event in span["events"]:
                assert set(event) == self.EVENT_KEYS
        # Spans arrive in creation order: ids strictly increasing.
        ids = [span["span_id"] for span in payload["spans"]]
        assert ids == sorted(ids)

    def test_event_log_line_shape(self):
        _, _, jsonl = self._traffic()
        lines = jsonl.splitlines()
        assert lines, "gateway traffic must emit stage events"
        for line in lines:
            assert line.startswith('{"seq":')
            record = json.loads(line)
            assert list(record)[:3] == ["seq", "ts", "kind"]
        stage_records = [
            json.loads(line)
            for line in lines
            if json.loads(line)["kind"] == "stage"
        ]
        assert any(r["stage"] == "predict" for r in stage_records)
