"""Gateway admin endpoints for the model-lifecycle controller.

Drives ``/v1/lifecycle*`` through ``handle_request`` (in-process, no
sockets) over a miniature drifted fleet, and asserts the serving path
reflects lifecycle actions: a promoted version shows up in forecast
metadata, a rollback pins the prior one.
"""

import asyncio
import json

import pytest

from repro.serving.gateway import FleetGateway, GatewayConfig

from tests.lifecycle.conftest import run_scenario


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def drifted(tmp_path):
    """(engine, controller, drifted vehicle id) with drift pending."""
    engine, controller, drifted_ids = run_scenario(tmp_path / "models")
    return engine, controller, drifted_ids[0]


def lifecycle_scenario(engine, fn):
    """Start a gateway over ``engine``, run ``fn(gateway)``, shut down."""

    async def scenario():
        gateway = FleetGateway(engine, GatewayConfig())
        await gateway.start()
        try:
            return await fn(gateway)
        finally:
            await gateway.shutdown()

    return run(scenario())


class TestStatusEndpoint:
    def test_get_status(self, drifted):
        engine, controller, vid = drifted

        async def fn(gateway):
            return await gateway.handle_request("GET", "/v1/lifecycle")

        response = lifecycle_scenario(engine, fn)
        assert response.status == 200
        assert set(response.payload) == {
            "policy", "counters", "vehicles", "history", "log"
        }
        assert response.payload["vehicles"][vid]["category"] == "OLD"
        json.dumps(response.payload)  # strict JSON clean

    def test_post_status_is_405(self, drifted):
        engine, _, _ = drifted

        async def fn(gateway):
            return await gateway.handle_request("POST", "/v1/lifecycle")

        response = lifecycle_scenario(engine, fn)
        assert response.status == 405
        assert response.headers["Allow"] == "GET"

    def test_no_controller_is_503(self, drifted):
        engine, _, _ = drifted
        engine.lifecycle = None

        async def fn(gateway):
            return await gateway.handle_request("GET", "/v1/lifecycle")

        response = lifecycle_scenario(engine, fn)
        assert response.status == 503


class TestRunEndpoint:
    def test_run_promotes_and_attributes_in_forecasts(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            ran = await gateway.handle_request(
                "POST", "/v1/lifecycle/run"
            )
            forecast = await gateway.handle_request(
                "GET", f"/v1/predict/{vid}"
            )
            return ran, forecast

        ran, forecast = lifecycle_scenario(engine, fn)
        assert ran.status == 200
        entries = ran.payload["evaluated"]
        assert [e["vehicle_id"] for e in entries] == [vid]
        assert entries[0]["outcome"] == "promoted"
        promoted_version = entries[0]["version"]
        assert forecast.status == 200
        assert forecast.payload["model_version"] == promoted_version
        assert forecast.payload["strategy"] == "per-vehicle"
        assert not forecast.payload["degraded"]

    def test_promote_single_vehicle_with_reason(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            return await gateway.handle_request(
                "POST",
                f"/v1/lifecycle/{vid}/promote",
                json.dumps({"reason": "ops ticket 42"}).encode(),
            )

        response = lifecycle_scenario(engine, fn)
        assert response.status == 200
        assert response.payload["outcome"] == "promoted"
        assert response.payload["trigger"] == "ops ticket 42"


class TestRollbackAndPin:
    def test_rollback_then_unpin_roundtrip(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            await gateway.handle_request("POST", "/v1/lifecycle/run")
            rolled = await gateway.handle_request(
                "POST", f"/v1/lifecycle/{vid}/rollback"
            )
            forecast = await gateway.handle_request(
                "GET", f"/v1/predict/{vid}"
            )
            unpinned = await gateway.handle_request(
                "POST", f"/v1/lifecycle/{vid}/unpin"
            )
            return rolled, forecast, unpinned

        rolled, forecast, unpinned = lifecycle_scenario(engine, fn)
        assert rolled.status == 200
        assert rolled.payload["action"] == "rollback"
        assert rolled.payload["version"] == 1
        assert forecast.payload["model_version"] == 1
        assert unpinned.status == 200
        assert engine.service._vehicles[vid].pinned_version is None

    def test_pin_requires_version(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            missing = await gateway.handle_request(
                "POST", f"/v1/lifecycle/{vid}/pin"
            )
            pinned = await gateway.handle_request(
                "POST",
                f"/v1/lifecycle/{vid}/pin",
                json.dumps({"version": 1}).encode(),
            )
            return missing, pinned

        missing, pinned = lifecycle_scenario(engine, fn)
        assert missing.status == 400
        assert pinned.status == 200
        assert engine.service._vehicles[vid].pinned_version == 1


class TestErrorMapping:
    def test_unknown_vehicle_404(self, drifted):
        engine, _, _ = drifted

        async def fn(gateway):
            return await gateway.handle_request(
                "POST", "/v1/lifecycle/ghost/promote"
            )

        assert lifecycle_scenario(engine, fn).status == 404

    def test_unknown_action_404(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            return await gateway.handle_request(
                "POST", f"/v1/lifecycle/{vid}/reboot"
            )

        assert lifecycle_scenario(engine, fn).status == 404

    def test_rollback_without_prior_version_422(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            return await gateway.handle_request(
                "POST", f"/v1/lifecycle/{vid}/rollback"
            )

        assert lifecycle_scenario(engine, fn).status == 422

    def test_pin_missing_stored_version_404(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            return await gateway.handle_request(
                "POST",
                f"/v1/lifecycle/{vid}/pin",
                json.dumps({"version": 99}).encode(),
            )

        assert lifecycle_scenario(engine, fn).status == 404

    def test_non_integer_version_400(self, drifted):
        engine, _, vid = drifted

        async def fn(gateway):
            return await gateway.handle_request(
                "POST",
                f"/v1/lifecycle/{vid}/pin",
                json.dumps({"version": True}).encode(),
            )

        assert lifecycle_scenario(engine, fn).status == 400


class TestSocketSmoke:
    """Admin flow over a real localhost socket: drift -> promote ->
    promoted version visible in forecast metadata -> rollback."""

    @staticmethod
    async def _request(reader, writer, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        data = await reader.readexactly(int(headers["content-length"]))
        return status, json.loads(data)

    def test_lifecycle_admin_round_trip(self, drifted):
        engine, _, vid = drifted

        async def scenario():
            gateway = FleetGateway(engine, GatewayConfig(port=0))
            host, port = await gateway.serve()
            reader, writer = await asyncio.open_connection(host, port)
            req = self._request
            status = await req(reader, writer, "GET", "/v1/lifecycle")
            ran = await req(reader, writer, "POST", "/v1/lifecycle/run")
            promoted = await req(reader, writer, "GET", f"/v1/predict/{vid}")
            rolled = await req(
                reader, writer, "POST", f"/v1/lifecycle/{vid}/rollback"
            )
            pinned = await req(reader, writer, "GET", f"/v1/predict/{vid}")
            writer.close()
            await gateway.shutdown()
            return status, ran, promoted, rolled, pinned

        status, ran, promoted, rolled, pinned = run(scenario())
        assert status[0] == ran[0] == promoted[0] == rolled[0] == 200
        entries = ran[1]["evaluated"]
        assert entries and entries[0]["outcome"] == "promoted"
        assert promoted[1]["model_version"] == entries[0]["version"]
        assert rolled[1]["action"] == "rollback"
        assert pinned[1]["model_version"] == rolled[1]["version"]
