"""Property-based round-trip tests for Forecast serialization."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categorize import VehicleCategory
from repro.serving.service import Forecast

_forecasts = st.builds(
    Forecast,
    vehicle_id=st.text(min_size=1, max_size=24),
    category=st.sampled_from(list(VehicleCategory)),
    strategy=st.sampled_from(
        ["per-vehicle", "similarity", "unified", "baseline"]
    ),
    days_to_maintenance=st.floats(
        allow_nan=False, allow_infinity=True, width=64
    ),
    usage_left=st.floats(allow_nan=False, allow_infinity=True, width=64),
    as_of_day=st.integers(min_value=0, max_value=10**9),
    donor_id=st.none() | st.text(min_size=1, max_size=24),
    degraded=st.booleans(),
    fallback_reason=st.none()
    | st.sampled_from(
        [
            "train-failed:per-vehicle",
            "breaker-open:similarity",
            "predict-failed:unified; breaker-open:similarity",
        ]
    )
    | st.text(max_size=60),
)


class TestForecastRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(forecast=_forecasts)
    def test_to_dict_from_dict_identity(self, forecast):
        assert Forecast.from_dict(forecast.to_dict()) == forecast

    @settings(max_examples=100, deadline=None)
    @given(forecast=_forecasts)
    def test_survives_json_wire_format(self, forecast):
        # The gateway ships forecasts as JSON; the pair must survive an
        # actual serialize/parse cycle, not just a dict copy.
        wire = json.loads(json.dumps(forecast.to_dict()))
        assert Forecast.from_dict(wire) == forecast

    @settings(max_examples=100, deadline=None)
    @given(forecast=_forecasts)
    def test_degraded_flag_and_reason_preserved(self, forecast):
        restored = Forecast.from_dict(forecast.to_dict())
        assert restored.degraded == forecast.degraded
        assert restored.fallback_reason == forecast.fallback_reason
        assert restored.category is forecast.category

    def test_category_serialized_by_name(self):
        forecast = Forecast(
            vehicle_id="v01",
            category=VehicleCategory.SEMI_NEW,
            strategy="similarity",
            days_to_maintenance=4.2,
            usage_left=90_000.0,
            as_of_day=17,
            degraded=True,
            fallback_reason="breaker-open:per-vehicle",
        )
        data = forecast.to_dict()
        assert data["category"] == "SEMI_NEW"
        assert Forecast.from_dict(data) == forecast
