"""Gateway durability behaviors: jittered back-pressure, readiness gate."""

import asyncio

import numpy as np

from repro.serving import FleetEngine, IngestionGuard
from repro.serving.gateway import FleetGateway, GatewayConfig

T_V = 200_000.0


def build_engine() -> FleetEngine:
    rng = np.random.default_rng(7)
    engine = FleetEngine(t_v=T_V, window=0, algorithm="LR",
                         guard=IngestionGuard())
    usage = {
        f"v{i:02d}": rng.uniform(15_000, 25_000, size=25) for i in range(3)
    }
    engine.register_fleet(usage)
    for vehicle_id, series in usage.items():
        engine.ingest_history(vehicle_id, series)
    return engine


def run(coro):
    return asyncio.run(coro)


class _StubDurability:
    """Duck-typed RecoveryManager: only what the gateway reads."""

    def __init__(self, ready: bool):
        self.ready = ready

    def maybe_checkpoint(self) -> bool:
        return False

    def status(self) -> dict:
        return {"ready": self.ready}


class TestRetryAfterJitter:
    def test_jitter_stays_in_configured_range(self):
        gateway = FleetGateway(
            build_engine(), GatewayConfig(retry_after_max_s=5)
        )
        values = {
            int(gateway._retry_after()["Retry-After"]) for _ in range(200)
        }
        assert values <= set(range(1, 6))
        assert len(values) > 1  # actually jittered, not constant

    def test_jitter_stream_is_reproducible(self):
        first = FleetGateway(build_engine(), GatewayConfig())
        second = FleetGateway(build_engine(), GatewayConfig())
        draws = [first._retry_after()["Retry-After"] for _ in range(20)]
        assert draws == [
            second._retry_after()["Retry-After"] for _ in range(20)
        ]


class TestReadinessGate:
    def test_503_while_recovering(self):
        async def scenario():
            engine = build_engine()
            engine.durability = _StubDurability(ready=False)
            gateway = FleetGateway(engine, GatewayConfig())
            await gateway.start()
            response = await gateway.handle_request(
                "GET", "/v1/predict/v00"
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 503
        assert "recovering" in response.payload["error"]
        assert response.headers["Retry-After"]

    def test_serves_once_ready(self):
        async def scenario():
            engine = build_engine()
            engine.durability = _StubDurability(ready=True)
            gateway = FleetGateway(engine, GatewayConfig())
            await gateway.start()
            response = await gateway.handle_request(
                "GET", "/v1/predict/v00"
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200
        assert response.payload["vehicle_id"] == "v00"
