"""Chaos suite: deterministic fault injection against the serving stack.

The acceptance contract: under seeded injected faults (store I/O
errors, corrupt artifacts, failing trainers, dirty readings) the
service never raises from ``ingest``/``predict``, every affected
``Forecast`` is flagged degraded with a reason, and the ``FleetHealth``
counters match the injected fault counts exactly.
"""

import numpy as np
import pytest

from repro.learn.linear import LinearRegression
from repro.serving.engine import EngineConfig, FleetEngine
from repro.serving.faults import (
    FaultInjector,
    FaultyExecutor,
    FaultyStore,
    InjectedFault,
    corrupt_readings,
    faulty_predictor_factory,
)
from repro.serving.monitoring import DriftMonitor
from repro.serving.persistence import ArtifactCorruptError, ModelStore
from repro.serving.reliability import (
    CircuitBreaker,
    IngestionGuard,
    RetryPolicy,
)
from repro.serving.service import MaintenancePredictionService

T_V = 200_000.0

CHAOS_SEEDS = [7, 23]


def resilient_service(**kwargs) -> MaintenancePredictionService:
    defaults = dict(
        t_v=T_V,
        window=0,
        algorithm="LR",
        guard=IngestionGuard(),
        breaker=CircuitBreaker(),
    )
    defaults.update(kwargs)
    return MaintenancePredictionService(**defaults)


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            injector = FaultInjector(seed=seed, rates={"x": 0.3})
            return [injector.fires("x") for _ in range(50)]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_sites_are_independent_streams(self):
        """Interleaving calls at other sites must not shift a site's
        schedule — that is what makes chaos runs replayable."""
        solo = FaultInjector(seed=1, rates={"a": 0.4})
        solo_schedule = [solo.fires("a") for _ in range(30)]
        mixed = FaultInjector(seed=1, rates={"a": 0.4, "b": 0.5})
        mixed_schedule = []
        for _ in range(30):
            mixed.fires("b")
            mixed_schedule.append(mixed.fires("a"))
            mixed.fires("b")
        assert mixed_schedule == solo_schedule

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(seed=0, rates={})
        assert not any(injector.fires("anything") for _ in range(100))
        assert injector.injected["anything"] == 0
        assert injector.calls["anything"] == 100

    def test_rate_one_always_fires(self):
        injector = FaultInjector(seed=0, rates={"x": 1.0})
        with pytest.raises(InjectedFault):
            injector.maybe_raise("x")
        assert injector.injected["x"] == 1

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="Rate"):
            FaultInjector(rates={"x": 1.5})

    def test_summary(self):
        injector = FaultInjector(seed=0, rates={"x": 1.0})
        injector.fires("x")
        injector.fires("y")
        assert injector.summary() == {
            "x": {"calls": 1, "injected": 1},
            "y": {"calls": 1, "injected": 0},
        }


class TestFaultyStore:
    @pytest.fixture
    def model(self, rng):
        X = rng.normal(size=(20, 2))
        return LinearRegression().fit(X, X[:, 0])

    def test_injected_save_error(self, tmp_path, model):
        injector = FaultInjector(seed=0, rates={"store.save": 1.0})
        store = FaultyStore(ModelStore(tmp_path), injector)
        with pytest.raises(OSError):
            store.save("m", model)
        assert injector.injected["store.save"] == 1

    def test_corrupted_payload_detected_on_load(self, tmp_path, model):
        injector = FaultInjector(seed=0, rates={"store.corrupt": 1.0})
        store = FaultyStore(ModelStore(tmp_path), injector)
        store.save("m", model)
        with pytest.raises(ArtifactCorruptError):
            store.load("m", fallback=False)

    def test_corruption_falls_back_to_older_version(self, tmp_path, model):
        inner = ModelStore(tmp_path)
        inner.save("m", model)  # v1: clean
        injector = FaultInjector(seed=0, rates={"store.corrupt": 1.0})
        FaultyStore(inner, injector).save("m", model)  # v2: corrupted
        artifact = inner.load("m")
        assert artifact.version == 1
        assert inner.quarantined("m") == [2]

    def test_delegates_everything_else(self, tmp_path, model):
        injector = FaultInjector(seed=0)
        store = FaultyStore(ModelStore(tmp_path), injector)
        store.save("m", model)
        assert store.keys() == ["m"]
        assert store.versions("m") == [1]


class TestFaultyPredictors:
    def test_fit_and_predict_raise_on_schedule(self):
        injector = FaultInjector(seed=0, rates={"train": 1.0})
        factory = faulty_predictor_factory(injector)
        predictor = factory("LR")
        with pytest.raises(InjectedFault):
            predictor.fit(None)
        assert injector.injected["train"] == 1

    def test_clean_injector_is_transparent(self, rng):
        """With no fault rates the wrapper changes nothing: forecasts
        are bit-identical to the plain service."""
        usage = rng.uniform(12_000, 26_000, size=40)
        injector = FaultInjector(seed=0)

        def forecast(**kwargs):
            service = MaintenancePredictionService(
                t_v=T_V, window=0, algorithm="LR", **kwargs
            )
            service.register_vehicle("v")
            service.ingest_series("v", usage)
            return service.predict("v")

        plain = forecast()
        wrapped = forecast(
            predictor_factory=faulty_predictor_factory(injector),
            guard=IngestionGuard(),
            breaker=CircuitBreaker(),
        )
        assert wrapped == plain
        assert injector.injected["train"] == 0


class TestFaultyExecutor:
    def test_delays_do_not_change_results(self):
        injector = FaultInjector(seed=0, rates={"executor.delay": 0.5})
        executor = FaultyExecutor(
            injector, delay=0.001, max_workers=4, kind="thread"
        )
        items = list(range(32))
        assert executor.map_ordered(_double, items) == [2 * i for i in items]
        assert injector.injected["executor.delay"] > 0

    def test_injected_exception_propagates(self):
        injector = FaultInjector(seed=0, rates={"executor.raise": 1.0})
        executor = FaultyExecutor(injector, max_workers=1, kind="serial")
        with pytest.raises(InjectedFault):
            executor.map_ordered(_double, [1])


class TestDirtyIngestChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_ingest_never_raises_and_counters_match_exactly(self, seed):
        rng = np.random.default_rng(seed)
        clean = {
            f"v{i}": rng.uniform(10_000, 28_000, size=80) for i in range(4)
        }
        injector = FaultInjector(
            seed=seed,
            rates={
                "reading.non_finite": 0.05,
                "reading.negative": 0.04,
                "reading.too_large": 0.04,
                "reading.duplicate": 0.03,
                "reading.out_of_order": 0.03,
            },
        )
        service = resilient_service()
        for vehicle_id in sorted(clean):
            service.register_vehicle(vehicle_id)
            for day, value in corrupt_readings(injector, clean[vehicle_id]):
                service.ingest(vehicle_id, value, day=day)

        anomalies = service.health().total_anomalies()
        expected = {
            "non-finite": injector.injected["reading.non_finite"],
            "negative": injector.injected["reading.negative"],
            "too-large": injector.injected["reading.too_large"],
            "duplicate-day": injector.injected["reading.duplicate"],
            "out-of-order": injector.injected["reading.out_of_order"],
        }
        expected = {k: v for k, v in expected.items() if v}
        assert anomalies == expected
        assert sum(expected.values()) > 0  # the run actually injected dirt

    def test_one_bad_vehicle_does_not_kill_the_batch(self):
        engine = FleetEngine(
            t_v=T_V, window=0, algorithm="LR", guard=IngestionGuard(),
            breaker=CircuitBreaker(),
            config=EngineConfig(max_workers=1, executor="serial"),
        )
        engine.register_fleet(["a", "b", "c"])
        engine.ingest_day({"a": 20_000.0, "b": float("nan"), "c": 21_000.0})
        service = engine.service
        assert service.series("a").n_days == 1
        assert service.series("b").n_days == 0  # quarantined
        assert service.series("c").n_days == 1


class TestTrainingFailureChaos:
    def build_engine(self, injector, **service_kwargs):
        service = resilient_service(
            predictor_factory=faulty_predictor_factory(injector),
            **service_kwargs,
        )
        return FleetEngine(
            service, config=EngineConfig(max_workers=1, executor="serial")
        )

    def test_all_trainers_failing_degrades_to_baseline(self):
        injector = FaultInjector(seed=0, rates={"train": 1.0})
        engine = self.build_engine(injector)
        engine.register_fleet(["old0", "old1"])
        for vehicle_id in ("old0", "old1"):
            engine.ingest_history(vehicle_id, [20_000.0] * 25)
        forecasts = engine.predict_all()
        assert len(forecasts) == 2
        for forecast in forecasts:
            assert forecast.strategy == "baseline"
            assert forecast.degraded
            assert "per-vehicle" in forecast.fallback_reason
            assert forecast.days_to_maintenance >= 0.0

    def test_breaker_failures_match_injected_faults(self):
        injector = FaultInjector(
            seed=1, rates={"train": 0.5, "predict": 0.2}
        )
        engine = self.build_engine(injector)
        engine.register_fleet([f"v{i}" for i in range(3)])
        for i in range(3):
            engine.ingest_history(f"v{i}", [18_000.0 + 1_000.0 * i] * 25)
        for _ in range(6):
            engine.predict_all()
            engine.ingest_day(
                {f"v{i}": 20_000.0 for i in range(3)}
            )
        health = engine.health()
        assert health.breaker_failures() == (
            injector.injected["train"] + injector.injected["predict"]
        )
        assert injector.injected["train"] > 0

    def test_breaker_opens_and_skips_broken_rung(self):
        injector = FaultInjector(seed=0, rates={"train": 1.0})
        service = resilient_service(
            breaker=CircuitBreaker(failure_threshold=2, cooldown=10),
            predictor_factory=faulty_predictor_factory(injector),
        )
        service.register_vehicle("v")
        service.ingest_series("v", [20_000.0] * 25)
        service.predict("v")  # failure 1
        service.predict("v")  # failure 2 -> opens
        attempts_before = injector.calls["train"]
        forecast = service.predict("v")  # skipped: circuit open
        assert injector.calls["train"] == attempts_before
        assert forecast.degraded and "circuit open" in forecast.fallback_reason

    def test_recovery_after_faults_stop(self):
        injector = FaultInjector(seed=0, rates={"train": 1.0})
        service = resilient_service(
            breaker=CircuitBreaker(failure_threshold=1, cooldown=1),
            predictor_factory=faulty_predictor_factory(injector),
        )
        service.register_vehicle("v")
        service.ingest_series("v", [20_000.0] * 25)
        assert service.predict("v").degraded  # fails, opens
        injector.rates["train"] = 0.0  # outage ends
        service.predict("v")  # consumes the cooldown skip
        recovered = service.predict("v")  # half-open trial succeeds
        assert not recovered.degraded
        assert recovered.strategy == "per-vehicle"


class TestStorageChaos:
    def test_transient_save_errors_recovered_by_retry(self, tmp_path):
        injector = FaultInjector(seed=3, rates={"store.save": 0.5})
        retry = RetryPolicy(attempts=4, sleep=lambda _s: None)
        service = resilient_service(
            store=FaultyStore(ModelStore(tmp_path), injector), retry=retry
        )
        service.register_vehicle("v")
        service.ingest_series("v", [20_000.0] * 25)
        for _ in range(5):
            service.predict("v")
            service.ingest_series("v", [20_000.0] * 10)  # new cycle: refit
        health = service.health()
        assert injector.injected["store.save"] == (
            retry.retries + health.persist_failures
        )
        assert injector.injected["store.save"] > 0
        assert retry.retries > 0

    def test_persistent_save_outage_never_breaks_predict(self, tmp_path):
        injector = FaultInjector(seed=0, rates={"store.save": 1.0})
        service = resilient_service(
            store=FaultyStore(ModelStore(tmp_path), injector),
            retry=RetryPolicy(attempts=2, sleep=lambda _s: None),
        )
        service.register_vehicle("v")
        service.ingest_series("v", [20_000.0] * 25)
        forecast = service.predict("v")
        # The model trained fine; only persistence failed.
        assert forecast.strategy == "per-vehicle"
        assert service.health().persist_failures == 1

    def test_non_resilient_service_still_propagates(self, tmp_path):
        injector = FaultInjector(seed=0, rates={"store.save": 1.0})
        service = MaintenancePredictionService(
            t_v=T_V, window=0, algorithm="LR",
            store=FaultyStore(ModelStore(tmp_path), injector),
        )
        service.register_vehicle("v")
        service.ingest_series("v", [20_000.0] * 25)
        with pytest.raises(OSError):
            service.predict("v")


class TestEndToEndChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_everything_injected_at_once(self, seed, tmp_path):
        rng = np.random.default_rng(seed)
        clean = {
            f"v{i:02d}": rng.uniform(10_000, 28_000, size=50) for i in range(5)
        }
        injector = FaultInjector(
            seed=seed,
            rates={
                "reading.non_finite": 0.03,
                "reading.negative": 0.02,
                "reading.too_large": 0.02,
                "reading.duplicate": 0.02,
                "reading.out_of_order": 0.02,
                "train": 0.2,
                "predict": 0.05,
                "store.save": 0.2,
                "store.corrupt": 0.1,
            },
        )
        retry = RetryPolicy(attempts=3, sleep=lambda _s: None, seed=seed)
        service = resilient_service(
            store=FaultyStore(ModelStore(tmp_path), injector),
            monitor=DriftMonitor(min_samples=1),
            retry=retry,
            predictor_factory=faulty_predictor_factory(injector),
        )
        engine = FleetEngine(
            service, config=EngineConfig(max_workers=1, executor="serial")
        )
        engine.register_fleet(clean)
        feeds = {
            vehicle_id: list(corrupt_readings(injector, usage))
            for vehicle_id, usage in sorted(clean.items())
        }

        degraded = 0
        steps = max(len(feed) for feed in feeds.values())
        for step in range(steps):  # never raises, by contract
            for vehicle_id in sorted(feeds):
                if step < len(feeds[vehicle_id]):
                    day, value = feeds[vehicle_id][step]
                    service.ingest(vehicle_id, value, day=day)
            if (step + 1) % 5 == 0:
                forecasts = engine.predict_all()
                for forecast in forecasts:
                    # Degraded forecasts always carry a reason.
                    assert forecast.degraded == (
                        forecast.fallback_reason is not None
                    )
                degraded += sum(1 for f in forecasts if f.degraded)

        health = engine.health()
        # Exact accounting: every injected fault shows up in the health
        # counters, nowhere else, exactly once.
        anomalies = health.total_anomalies()
        assert anomalies.get("non-finite", 0) == injector.injected["reading.non_finite"]
        assert anomalies.get("negative", 0) == injector.injected["reading.negative"]
        assert anomalies.get("too-large", 0) == injector.injected["reading.too_large"]
        assert anomalies.get("duplicate-day", 0) == injector.injected["reading.duplicate"]
        assert anomalies.get("out-of-order", 0) == injector.injected["reading.out_of_order"]
        assert health.breaker_failures() == (
            injector.injected["train"] + injector.injected["predict"]
        )
        assert injector.injected["store.save"] == (
            retry.retries + health.persist_failures
        )
        assert degraded > 0  # the chaos actually degraded some serves
        assert health.total_fallbacks() == degraded

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_replays_identically(self, seed, tmp_path):
        """Same seed, same faults, same forecasts — the harness is
        deterministic end to end."""

        def run(root):
            rng = np.random.default_rng(seed)
            usage = rng.uniform(10_000, 28_000, size=40)
            injector = FaultInjector(
                seed=seed,
                rates={"reading.non_finite": 0.05, "train": 0.3},
            )
            service = resilient_service(
                store=FaultyStore(ModelStore(root), injector),
                predictor_factory=faulty_predictor_factory(injector),
            )
            service.register_vehicle("v")
            forecasts = []
            for day, value in corrupt_readings(injector, usage):
                service.ingest("v", value, day=day)
                if service.series("v").n_days > 10:
                    forecasts.append(service.predict("v"))
            return forecasts, dict(injector.injected)

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second


def _double(x):
    return 2 * x
