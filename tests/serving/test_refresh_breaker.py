"""``refresh_models()`` under a tripped training circuit breaker.

A sick training path must not be hammered every refresh: after the
breaker opens for a vehicle's ``per-vehicle`` key, the fleet refresh
leaves that model stale (without even attempting the train), prediction
steps down the fallback ladder, and the half-open trial that prediction
drives eventually lets a later refresh retrain and recover.
"""

import numpy as np
import pytest

from repro.serving.engine import EngineConfig, FleetEngine
from repro.serving.faults import (
    FaultInjector,
    InjectedFault,
    faulty_predictor_factory,
)
from repro.serving.persistence import ModelStore
from repro.serving.reliability import CircuitBreaker
from repro.serving.service import MaintenancePredictionService

T_V = 200_000.0
KEY = "v1:per-vehicle"


def build_stack(tmp_path, *, breaker=True, failure_threshold=2, cooldown=3):
    """One old vehicle with a trained v1 champion and injectable trains."""
    injector = FaultInjector(seed=0, rates={"train": 0.0})
    service = MaintenancePredictionService(
        t_v=T_V,
        window=0,
        algorithm="LR",
        store=ModelStore(tmp_path / "models"),
        breaker=(
            CircuitBreaker(failure_threshold, cooldown) if breaker else None
        ),
        predictor_factory=faulty_predictor_factory(injector),
    )
    engine = FleetEngine(
        service,
        config=EngineConfig(
            max_workers=1, executor="serial", auto_refresh=False
        ),
    )
    service.register_vehicle("v1")
    service.ingest_series("v1", np.full(40, 20_000.0))  # ~4 cycles: OLD
    forecast = service.predict("v1")  # trains and persists champion v1
    assert forecast.strategy == "per-vehicle" and not forecast.degraded
    return engine, service, injector


def make_stale(service, start_day=40, days=12):
    """Complete one more maintenance cycle so the champion goes stale."""
    for day in range(start_day, start_day + days):
        service.ingest("v1", 20_000.0, day=day)


def trip_breaker(engine, service, injector, failures=2):
    """Open the breaker through genuinely failed refresh trains."""
    injector.rates["train"] = 1.0
    for _ in range(failures):
        assert engine.refresh_models() == 0
    injector.rates["train"] = 0.0
    assert service.breaker.is_open(KEY)


class TestFailedTraining:
    def test_failed_train_leaves_prior_version_serving(self, tmp_path):
        engine, service, injector = build_stack(tmp_path)
        state = service._vehicles["v1"]
        champion = state.model
        make_stale(service)
        injector.rates["train"] = 1.0
        assert engine.refresh_models() == 0
        assert service.breaker.failure_count(KEY) == 1
        # The stale champion is untouched: same object, same version,
        # nothing new persisted.
        assert state.model is champion
        assert state.model_version == 1
        assert service.store.versions("v1.per-vehicle") == [1]

    def test_without_breaker_first_failure_raises(self, tmp_path):
        engine, service, injector = build_stack(tmp_path, breaker=False)
        make_stale(service)
        injector.rates["train"] = 1.0
        with pytest.raises(InjectedFault):
            engine.refresh_models()


class TestTrippedBreaker:
    def test_refresh_skips_stale_model_without_attempting(self, tmp_path):
        engine, service, injector = build_stack(tmp_path)
        make_stale(service)
        trip_breaker(engine, service, injector)
        calls_before = injector.calls["train"]
        # Training would succeed now — but the open breaker means the
        # refresh must not even try (and must not consume skips either:
        # only prediction's allow() walks the circuit to half-open).
        assert engine.refresh_models() == 0
        assert injector.calls["train"] == calls_before
        assert service.breaker.is_open(KEY)
        assert service._vehicles["v1"].model_version == 1

    def test_prediction_degrades_while_open(self, tmp_path):
        engine, service, injector = build_stack(tmp_path)
        make_stale(service)
        trip_breaker(engine, service, injector)
        forecast = service.predict("v1")
        assert forecast.degraded
        assert forecast.strategy != "per-vehicle"
        assert "circuit open" in forecast.fallback_reason

    def test_half_open_recovery_retrains_on_next_refresh(self, tmp_path):
        engine, service, injector = build_stack(tmp_path, cooldown=3)
        make_stale(service)
        trip_breaker(engine, service, injector)
        # Each serve consumes one skip; after `cooldown` degraded serves
        # the circuit half-opens and the refresh may try again.
        for _ in range(3):
            assert service.predict("v1").degraded
        assert not service.breaker.is_open(KEY)
        assert engine.refresh_models() == 1
        state = service._vehicles["v1"]
        assert state.model_version == 2
        assert service.store.versions("v1.per-vehicle") == [1, 2]
        forecast = service.predict("v1")
        assert not forecast.degraded
        assert forecast.strategy == "per-vehicle"
        assert forecast.model_version == 2

    def test_recovered_model_matches_unfaulted_training(self, tmp_path):
        engine, service, injector = build_stack(tmp_path)
        make_stale(service)
        trip_breaker(engine, service, injector)
        for _ in range(3):
            service.predict("v1")
        engine.refresh_models()

        clean_engine, clean_service, _ = build_stack(tmp_path / "clean")
        make_stale(clean_service)
        assert clean_engine.refresh_models() == 1

        probe = np.array([[100_000.0]])
        np.testing.assert_array_equal(
            np.asarray(service._vehicles["v1"].model.predict(probe)),
            np.asarray(clean_service._vehicles["v1"].model.predict(probe)),
        )
