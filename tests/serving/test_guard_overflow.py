"""Bounded dead-letter buffer: cap, overflow counter, health surfacing."""

import pytest

from repro.serving import IngestionGuard, MaintenancePredictionService

T_V = 200_000.0


class TestDeadLetterCap:
    def test_buffer_stops_at_cap_and_counts_overflow(self):
        guard = IngestionGuard(max_dead_letters=2)
        for day in range(5):
            decision = guard.screen("v01", float("nan"), day=day)
            assert decision.value is None  # quarantined either way
        assert len(guard.dead_letters()) == 2
        assert guard.overflow_count() == 3
        # Anomaly accounting keeps counting past the cap.
        assert guard.anomaly_counts("v01") == {"non-finite": 5}

    def test_zero_cap_records_nothing(self):
        guard = IngestionGuard(max_dead_letters=0)
        guard.screen("v01", float("nan"), day=0)
        assert guard.dead_letters() == []
        assert guard.overflow_count() == 1

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="max_dead_letters"):
            IngestionGuard(max_dead_letters=-1)

    def test_overflow_survives_state_round_trip(self):
        guard = IngestionGuard(max_dead_letters=1)
        for day in range(3):
            guard.screen("v01", float("nan"), day=day)
        restored = IngestionGuard(max_dead_letters=1)
        restored.load_state_dict(guard.state_dict())
        assert restored.overflow_count() == guard.overflow_count() == 2


class TestHealthSurfacing:
    def test_fleet_health_reports_overflow(self):
        service = MaintenancePredictionService(
            t_v=T_V,
            window=0,
            algorithm="LR",
            guard=IngestionGuard(max_dead_letters=1),
        )
        service.register_vehicle("v01")
        for day in range(4):
            service.ingest("v01", float("nan"), day=day)
        health = service.health()
        assert health.dead_letter_overflow == 3
        assert health.as_dict()["dead_letter_overflow"] == 3

    def test_no_overflow_reads_zero(self):
        service = MaintenancePredictionService(
            t_v=T_V, window=0, algorithm="LR", guard=IngestionGuard()
        )
        service.register_vehicle("v01")
        service.ingest("v01", 20_000.0, day=0)
        assert service.health().dead_letter_overflow == 0
