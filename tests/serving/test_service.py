"""Unit and scenario tests for the online prediction service."""

import numpy as np
import pytest

from repro.core.categorize import VehicleCategory
from repro.serving.monitoring import DriftMonitor
from repro.serving.persistence import ModelStore
from repro.serving.service import MaintenancePredictionService

T_V = 200_000.0  # 10 steady days per cycle at 20 000 s/day


def steady_service(**kwargs) -> MaintenancePredictionService:
    defaults = dict(t_v=T_V, window=0, algorithm="LR")
    defaults.update(kwargs)
    return MaintenancePredictionService(**defaults)


class TestIngestion:
    def test_register_and_ingest(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest("v01", 20_000.0)
        assert service.series("v01").n_days == 1

    def test_duplicate_registration(self):
        service = steady_service()
        service.register_vehicle("v01")
        with pytest.raises(ValueError, match="already registered"):
            service.register_vehicle("v01")

    def test_unknown_vehicle(self):
        service = steady_service()
        with pytest.raises(KeyError, match="register"):
            service.ingest("ghost", 100.0)

    def test_invalid_daily_seconds(self):
        service = steady_service()
        service.register_vehicle("v01")
        for bad in (-1.0, 90_000.0, float("nan")):
            with pytest.raises(ValueError):
                service.ingest("v01", bad)

    def test_category_progression(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 3)
        assert service.category("v01") is VehicleCategory.NEW
        service.ingest_series("v01", [20_000.0] * 4)
        assert service.category("v01") is VehicleCategory.SEMI_NEW
        service.ingest_series("v01", [20_000.0] * 5)
        assert service.category("v01") is VehicleCategory.OLD


class TestPredictionRouting:
    def _fleet_with_old_vehicles(self, service, n_old=3, days=25):
        for i in range(n_old):
            vid = f"old{i}"
            service.register_vehicle(vid)
            # Distinct rates so Model_Sim has something to match on.
            service.ingest_series(vid, [18_000.0 + 2_000.0 * i] * days)

    def test_old_vehicle_uses_per_vehicle_model(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        forecast = service.predict("v01")
        assert forecast.strategy == "per-vehicle"
        assert forecast.category is VehicleCategory.OLD
        assert 0 <= forecast.days_to_maintenance <= 12

    def test_semi_new_uses_similarity_with_donors(self):
        service = steady_service()
        self._fleet_with_old_vehicles(service)
        service.register_vehicle("young")
        service.ingest_series("young", [20_000.0] * 6)  # past T_v/2
        forecast = service.predict("young")
        assert forecast.category is VehicleCategory.SEMI_NEW
        assert forecast.strategy == "similarity"
        assert forecast.donor_id in {"old0", "old1", "old2"}

    def test_semi_new_falls_back_to_baseline_without_donors(self):
        service = steady_service()
        service.register_vehicle("young")
        service.ingest_series("young", [20_000.0] * 6)
        forecast = service.predict("young")
        assert forecast.strategy == "baseline"

    def test_new_uses_unified_with_donors(self):
        service = steady_service()
        self._fleet_with_old_vehicles(service)
        service.register_vehicle("baby")
        service.ingest_series("baby", [20_000.0] * 2)
        forecast = service.predict("baby")
        assert forecast.category is VehicleCategory.NEW
        assert forecast.strategy == "unified"

    def test_new_falls_back_to_baseline_without_donors(self):
        service = steady_service()
        service.register_vehicle("baby")
        service.ingest_series("baby", [20_000.0] * 2)
        assert service.predict("baby").strategy == "baseline"

    def test_prediction_quality_on_steady_vehicle(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        forecast = service.predict("v01")
        # Day 24 is the 5th day of its cycle: true D = 5.
        assert forecast.days_to_maintenance == pytest.approx(5.0, abs=1.5)

    def test_window_longer_than_history(self):
        service = steady_service(window=6)
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 3)
        with pytest.raises(ValueError, match="window"):
            service.predict("v01")


class TestModelLifecycle:
    def test_model_retrained_after_new_cycle(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        service.predict("v01")
        first_model = service._vehicles["v01"].model
        service.ingest_series("v01", [20_000.0] * 10)  # completes a cycle
        service.predict("v01")
        assert service._vehicles["v01"].model is not first_model

    def test_model_reused_within_cycle(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        service.predict("v01")
        model = service._vehicles["v01"].model
        service.ingest("v01", 20_000.0)
        service.predict("v01")
        assert service._vehicles["v01"].model is model

    def test_models_persisted_to_store(self, tmp_path):
        store = ModelStore(tmp_path)
        service = steady_service(store=store)
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        service.predict("v01")
        assert "v01.per-vehicle" in store.keys()
        artifact = store.load("v01.per-vehicle")
        assert artifact.metadata["strategy"] == "per-vehicle"


class TestFeedbackLoop:
    def test_resolved_forecasts_feed_monitor(self):
        monitor = DriftMonitor(min_samples=1)
        service = steady_service(monitor=monitor)
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        service.predict("v01")  # pending: day 24, truth unknown yet
        assert monitor.summary() == {}
        service.ingest_series("v01", [20_000.0] * 10)  # cycle completes
        summary = monitor.summary()
        assert summary["v01"]["n"] >= 1
        assert summary["v01"]["mae"] < 3.0

    def test_accurate_service_raises_no_alerts(self):
        monitor = DriftMonitor(threshold_days=4.0, min_samples=1)
        service = steady_service(monitor=monitor)
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 22)
        for _ in range(6):
            service.predict("v01")
            service.ingest("v01", 20_000.0)
        service.ingest_series("v01", [20_000.0] * 12)
        assert monitor.alerts() == []


class TestIngestSeriesAtomicity:
    def test_bad_element_mid_array_ingests_nothing(self):
        """Regression: a bad reading at index 2 used to leave elements
        0–1 behind; now the whole batch is validated before any commit."""
        service = steady_service()
        service.register_vehicle("v01")
        with pytest.raises(ValueError, match="element 2"):
            service.ingest_series(
                "v01", [20_000.0, 21_000.0, float("nan"), 22_000.0]
            )
        assert service.series("v01").n_days == 0
        # The rejected batch can be fixed and re-sent cleanly.
        service.ingest_series("v01", [20_000.0, 21_000.0, 22_000.0])
        assert service.series("v01").n_days == 3

    def test_unknown_vehicle_checked_before_validation(self):
        service = steady_service()
        with pytest.raises(KeyError, match="register"):
            service.ingest_series("ghost", [float("nan")])

    def test_empty_series_is_a_no_op(self):
        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [])
        assert service.series("v01").n_days == 0


class CountingFactory:
    """make_predictor stand-in that counts fit() calls per predictor."""

    def __init__(self):
        self.fits = 0

    def __call__(self, algorithm):
        from repro.core.registry import make_predictor

        factory = self

        class _Counting:
            def __init__(self):
                self._inner = make_predictor(algorithm)

            def fit(self, dataset, **kwargs):
                factory.fits += 1
                self._inner.fit(dataset, **kwargs)
                return self

            def predict(self, X):
                return self._inner.predict(X)

        return _Counting()


class TestSimilarityModelCache:
    def build(self):
        factory = CountingFactory()
        service = steady_service(predictor_factory=factory)
        for i in range(3):
            service.register_vehicle(f"old{i}")
            service.ingest_series(f"old{i}", [18_000.0 + 2_000.0 * i] * 25)
        service.register_vehicle("young")
        service.ingest_series("young", [20_000.0] * 6)
        return service, factory

    def test_repeated_predictions_do_not_refit(self):
        service, factory = self.build()
        first = service.predict("young")
        assert first.strategy == "similarity"
        fits_after_first = factory.fits
        for _ in range(5):
            again = service.predict("young")
            assert again.strategy == "similarity"
            assert again.donor_id == first.donor_id
        assert factory.fits == fits_after_first

    def test_donor_change_invalidates_cache(self):
        service, factory = self.build()
        service.predict("young")
        fits = factory.fits
        # Pull the target's average usage toward old2's rate (staying
        # under T_v, so still semi-new): the most similar donor changes,
        # so Model_Sim must be refit.
        service.ingest_series("young", [26_000.0] * 2)
        changed = service.predict("young")
        assert changed.strategy == "similarity"
        assert changed.donor_id == "old2"
        assert factory.fits == fits + 1

    def test_cached_model_produces_identical_forecasts(self):
        service, _ = self.build()
        first = service.predict("young")
        second = service.predict("young")
        assert second.days_to_maintenance == first.days_to_maintenance


class TestServiceOnSimulatedFleet:
    def test_realistic_replay(self, small_fleet):
        """Replay a simulated vehicle day by day through the service."""
        vehicle = small_fleet.vehicles[0]
        monitor = DriftMonitor(min_samples=1)
        service = MaintenancePredictionService(
            t_v=vehicle.spec.t_v, window=3, algorithm="XGB", monitor=monitor
        )
        service.register_vehicle(vehicle.vehicle_id)
        # Warm up with most of the history, then predict weekly.
        warmup = int(vehicle.n_days * 0.8)
        service.ingest_series(vehicle.vehicle_id, vehicle.usage[:warmup])
        for day in range(warmup, vehicle.n_days):
            if (day - warmup) % 7 == 0 and service.category(
                vehicle.vehicle_id
            ) is VehicleCategory.OLD:
                forecast = service.predict(vehicle.vehicle_id)
                assert forecast.days_to_maintenance >= 0.0
            service.ingest(vehicle.vehicle_id, float(vehicle.usage[day]))
        # Some forecasts resolved as cycles completed.
        assert monitor.summary().get(vehicle.vehicle_id, {}).get("n", 0) >= 1


class TestForecastSerialization:
    def _forecast(self, **overrides):
        from repro.serving.service import Forecast

        fields = dict(
            vehicle_id="v07",
            category=VehicleCategory.SEMI_NEW,
            strategy="similarity",
            days_to_maintenance=12.3456789012345678,
            usage_left=123_456.789,
            as_of_day=41,
            donor_id="v02",
            degraded=True,
            fallback_reason="per-vehicle: RuntimeError: boom",
        )
        fields.update(overrides)
        return Forecast(**fields)

    def test_round_trip_is_exact(self):
        from repro.serving.service import Forecast

        forecast = self._forecast()
        assert Forecast.from_dict(forecast.to_dict()) == forecast

    def test_round_trip_survives_json(self):
        import json

        from repro.serving.service import Forecast

        forecast = self._forecast()
        rebuilt = Forecast.from_dict(json.loads(json.dumps(forecast.to_dict())))
        assert rebuilt == forecast
        # Bit-identical floats, not approximately equal.
        assert rebuilt.days_to_maintenance == forecast.days_to_maintenance
        assert rebuilt.usage_left == forecast.usage_left

    def test_category_serialized_as_member_name(self):
        payload = self._forecast().to_dict()
        assert payload["category"] == "SEMI_NEW"

    def test_defaults_round_trip(self):
        from repro.serving.service import Forecast

        forecast = self._forecast(
            category=VehicleCategory.OLD,
            strategy="per-vehicle",
            donor_id=None,
            degraded=False,
            fallback_reason=None,
        )
        rebuilt = Forecast.from_dict(forecast.to_dict())
        assert rebuilt == forecast
        assert rebuilt.donor_id is None and rebuilt.fallback_reason is None

    def test_served_forecast_round_trips(self):
        from repro.serving.service import Forecast

        service = steady_service()
        service.register_vehicle("v01")
        service.ingest_series("v01", [20_000.0] * 25)
        forecast = service.predict("v01")
        assert Forecast.from_dict(forecast.to_dict()) == forecast
