"""Tests for the async HTTP fleet gateway.

Everything except the socket smoke test drives the gateway through
``handle_request`` directly — an asyncio in-process client, no real
sockets — so the suite stays fast and deterministic.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serving import (
    CircuitBreaker,
    EngineConfig,
    FleetEngine,
    IngestionGuard,
    MaintenancePredictionService,
)
from repro.serving.gateway import (
    DEGRADED_HEADER,
    FleetGateway,
    GatewayConfig,
    GatewayMetrics,
)
from repro.serving.service import Forecast

T_V = 200_000.0
N_VEHICLES = 4
N_DAYS = 25


def fleet_usage(
    n_vehicles: int = N_VEHICLES, n_days: int = N_DAYS
) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        f"v{i:02d}": rng.uniform(15_000, 25_000, size=n_days)
        for i in range(n_vehicles)
    }


def build_engine(usage=None, **service_kwargs) -> FleetEngine:
    usage = fleet_usage() if usage is None else usage
    engine = FleetEngine(
        t_v=T_V, window=0, algorithm="LR", **service_kwargs
    )
    engine.register_fleet(usage)
    for vehicle_id, series in usage.items():
        engine.ingest_history(vehicle_id, series)
    return engine


def serial_reference(usage=None) -> dict[str, Forecast]:
    """Sequential MaintenancePredictionService forecasts, one per vehicle."""
    usage = fleet_usage() if usage is None else usage
    service = MaintenancePredictionService(t_v=T_V, window=0, algorithm="LR")
    for vehicle_id in sorted(usage):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage[vehicle_id])
    return {vehicle_id: service.predict(vehicle_id) for vehicle_id in sorted(usage)}


def run(coro):
    return asyncio.run(coro)


async def started_gateway(config=None, engine=None, **start_kwargs):
    gateway = FleetGateway(
        engine if engine is not None else build_engine(),
        config or GatewayConfig(),
    )
    await gateway.start(**start_kwargs)
    return gateway


class TestRouting:
    def test_unknown_path_404(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request("GET", "/nope")
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 404

    def test_wrong_method_405(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request("POST", "/v1/health")
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 405
        assert response.headers["Allow"] == "GET"

    def test_bad_json_400(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request(
                "POST", "/v1/ingest", b"{not json"
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 400
        assert "invalid JSON" in response.payload["error"]

    def test_unknown_vehicle_404(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request("GET", "/v1/predict/ghost")
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 404
        assert "ghost" in response.payload["error"]

    def test_unready_vehicle_422(self):
        async def scenario():
            usage = fleet_usage()
            engine = build_engine(usage)
            engine.service.register_vehicle("young")
            gateway = await started_gateway(engine=engine)
            response = await gateway.handle_request("GET", "/v1/predict/young")
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 422

    def test_bad_deadline_400(self):
        async def scenario():
            gateway = await started_gateway()
            responses = [
                await gateway.handle_request(
                    "GET", "/v1/predict/v00?deadline_ms=banana"
                ),
                await gateway.handle_request(
                    "GET", "/v1/predict/v00?deadline_ms=-3"
                ),
            ]
            await gateway.shutdown()
            return responses

        assert [r.status for r in run(scenario())] == [400, 400]

    def test_requires_start(self):
        gateway = FleetGateway(build_engine())
        with pytest.raises(RuntimeError, match="start"):
            run(gateway.handle_request("GET", "/v1/health"))


class TestIngest:
    def test_single_reading(self):
        async def scenario():
            engine = build_engine()
            gateway = await started_gateway(engine=engine)
            response = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps({"vehicle_id": "v00", "seconds": 20_000.0}).encode(),
            )
            await gateway.shutdown()
            return response, engine.service.n_days("v00")

        response, n_days = run(scenario())
        assert response.status == 200
        assert response.payload == {"ingested": 1}
        assert n_days == N_DAYS + 1

    def test_batch_readings(self):
        async def scenario():
            engine = build_engine()
            gateway = await started_gateway(engine=engine)
            readings = [
                {"vehicle_id": "v00", "seconds": 18_000.0, "day": N_DAYS},
                {"vehicle_id": "v01", "seconds": 21_000.0, "day": N_DAYS},
            ]
            response = await gateway.handle_request(
                "POST", "/v1/ingest", json.dumps({"readings": readings}).encode()
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200
        assert response.payload == {"ingested": 2}

    def test_auto_registers_unknown_vehicle(self):
        async def scenario():
            engine = build_engine()
            gateway = await started_gateway(engine=engine)
            response = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps(
                    {"vehicle_id": "newcomer", "seconds": 5_000.0}
                ).encode(),
            )
            await gateway.shutdown()
            return response, engine.service.has_vehicle("newcomer")

        response, registered = run(scenario())
        assert response.status == 200
        assert registered

    def test_unknown_vehicle_without_auto_register(self):
        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(auto_register=False)
            )
            response = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps({"vehicle_id": "ghost", "seconds": 1.0}).encode(),
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 422
        assert "ghost" in response.payload["error"]

    def test_dirty_reading_without_guard_422(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps({"vehicle_id": "v00", "seconds": -5.0}).encode(),
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 422
        assert response.payload["ingested"] == 0

    def test_dirty_reading_with_guard_screened(self):
        async def scenario():
            engine = build_engine(guard=IngestionGuard())
            gateway = await started_gateway(engine=engine)
            response = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps({"vehicle_id": "v00", "seconds": -5.0}).encode(),
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200  # guard clamps, never raises

    def test_malformed_reading_400(self):
        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps({"vehicle_id": "v00"}).encode(),
            )
            await gateway.shutdown()
            return response

        assert run(scenario()).status == 400


class TestPredict:
    def test_single_forecast_round_trips(self):
        reference = serial_reference()

        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request("GET", "/v1/predict/v02")
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200
        forecast = Forecast.from_dict(json.loads(response.body()))
        assert forecast == reference["v02"]
        assert DEGRADED_HEADER not in response.headers

    def test_batch_endpoint_mixed_outcomes(self):
        reference = serial_reference()

        async def scenario():
            gateway = await started_gateway()
            response = await gateway.handle_request(
                "POST",
                "/v1/predict:batch",
                json.dumps({"vehicle_ids": ["v01", "ghost", "v03"]}).encode(),
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200
        payload = response.payload
        assert payload["errors"] == 1
        ok_1 = Forecast.from_dict(payload["forecasts"][0])
        ok_3 = Forecast.from_dict(payload["forecasts"][2])
        assert ok_1 == reference["v01"]
        assert ok_3 == reference["v03"]
        assert payload["forecasts"][1]["status"] == 404

    def test_batch_endpoint_rejects_bad_body(self):
        async def scenario():
            gateway = await started_gateway()
            responses = [
                await gateway.handle_request(
                    "POST", "/v1/predict:batch", json.dumps({}).encode()
                ),
                await gateway.handle_request(
                    "POST",
                    "/v1/predict:batch",
                    json.dumps({"vehicle_ids": []}).encode(),
                ),
            ]
            await gateway.shutdown()
            return responses

        assert [r.status for r in run(scenario())] == [400, 400]


class TestSerialEquivalence:
    """The acceptance contract: concurrent gateway forecasts are
    byte-identical to sequential service.predict on the same history,
    with and without micro-batching."""

    @pytest.mark.parametrize("batch_window_s", [0.0, 0.005])
    def test_concurrent_predicts_match_serial(self, batch_window_s):
        usage = fleet_usage()
        reference = serial_reference(usage)
        vehicle_ids = sorted(usage)

        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(batch_window_s=batch_window_s),
                engine=build_engine(usage),
            )
            # 6 concurrent requests per vehicle, interleaved.
            targets = [
                vehicle_ids[i % len(vehicle_ids)] for i in range(24)
            ]
            responses = await asyncio.gather(
                *(
                    gateway.handle_request("GET", f"/v1/predict/{vid}")
                    for vid in targets
                )
            )
            metrics = gateway.metrics.snapshot()
            await gateway.shutdown()
            return targets, responses, metrics

        targets, responses, metrics = run(scenario())
        assert all(response.status == 200 for response in responses)
        for vehicle_id, response in zip(targets, responses):
            served = Forecast.from_dict(json.loads(response.body()))
            # Byte-identical: dataclass equality covers every field
            # including the exact float payloads.
            assert served == reference[vehicle_id]
        if batch_window_s > 0:
            assert metrics["batch"]["sizes"]["max"] > 1  # really coalesced
        else:
            assert metrics["batch"]["sizes"]["max"] == 1

    def test_batch_endpoint_matches_serial(self):
        usage = fleet_usage()
        reference = serial_reference(usage)

        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(batch_window_s=0.005),
                engine=build_engine(usage),
            )
            response = await gateway.handle_request(
                "POST",
                "/v1/predict:batch",
                json.dumps({"vehicle_ids": sorted(usage)}).encode(),
            )
            await gateway.shutdown()
            return response

        response = run(scenario())
        for item in response.payload["forecasts"]:
            served = Forecast.from_dict(item)
            assert served == reference[served.vehicle_id]


class TestAdmissionControl:
    def test_full_queue_429_with_retry_after(self):
        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(max_queue=2, batch_window_s=0.0),
                dispatch=False,  # queue fills; nothing drains it yet
            )
            tasks = [
                asyncio.create_task(
                    gateway.handle_request("GET", "/v1/predict/v00")
                )
                for _ in range(4)
            ]
            for _ in range(3):
                await asyncio.sleep(0)
            rejected = [task.result() for task in tasks if task.done()]
            gateway.start_dispatcher()
            served = await asyncio.gather(
                *(task for task in tasks if not task.done())
            )
            rejections = gateway.metrics.queue_rejections
            await gateway.shutdown()
            return rejected, served, rejections

        rejected, served, rejections = run(scenario())
        assert [r.status for r in rejected] == [429, 429]
        assert all(r.headers["Retry-After"] for r in rejected)
        assert [r.status for r in served] == [200, 200]
        assert rejections == 2

    def test_expired_deadline_504_and_no_batch_slot(self):
        async def scenario():
            gateway = await started_gateway(
                config=GatewayConfig(batch_window_s=0.005), dispatch=False
            )
            doomed = asyncio.create_task(
                gateway.handle_request("GET", "/v1/predict/v00?deadline_ms=1")
            )
            alive = asyncio.create_task(
                gateway.handle_request(
                    "GET", "/v1/predict/v01?deadline_ms=60000"
                )
            )
            await asyncio.sleep(0.05)  # let the first deadline lapse
            gateway.start_dispatcher()
            responses = await asyncio.gather(doomed, alive)
            metrics = gateway.metrics.snapshot()
            await gateway.shutdown()
            return responses, metrics

        (doomed, alive), metrics = run(scenario())
        assert doomed.status == 504
        assert alive.status == 200
        assert metrics["deadline_expirations"] == 1
        # The expired request never occupied a predict_many slot.
        assert metrics["batch"]["sizes"]["max"] == 1
        assert metrics["batch"]["sizes"]["count"] == 1


class TestDrainAndShutdown:
    def test_graceful_drain_serves_queued_requests(self):
        async def scenario():
            gateway = await started_gateway(dispatch=False)
            tasks = [
                asyncio.create_task(
                    gateway.handle_request("GET", f"/v1/predict/v{i:02d}")
                )
                for i in range(3)
            ]
            for _ in range(3):
                await asyncio.sleep(0)
            gateway.start_dispatcher()
            await gateway.shutdown()  # drain=True flushes the queue first
            responses = await asyncio.gather(*tasks)
            return gateway, responses

        gateway, responses = run(scenario())
        assert [r.status for r in responses] == [200, 200, 200]
        with pytest.raises(RuntimeError, match="start"):
            run(gateway.handle_request("GET", "/v1/health"))

    def test_shutdown_without_drain_fails_queued_503(self):
        async def scenario():
            gateway = await started_gateway(dispatch=False)
            tasks = [
                asyncio.create_task(
                    gateway.handle_request("GET", "/v1/predict/v00")
                )
                for _ in range(2)
            ]
            for _ in range(3):
                await asyncio.sleep(0)
            await gateway.shutdown(drain=False)
            return await asyncio.gather(*tasks)

        responses = run(scenario())
        assert [r.status for r in responses] == [503, 503]

    def test_draining_gateway_rejects_new_work(self):
        async def scenario():
            gateway = await started_gateway()
            gateway._draining = True  # what shutdown() flips first
            predict = await gateway.handle_request("GET", "/v1/predict/v00")
            ingest = await gateway.handle_request(
                "POST",
                "/v1/ingest",
                json.dumps({"vehicle_id": "v00", "seconds": 1.0}).encode(),
            )
            health = await gateway.handle_request("GET", "/v1/health")
            await gateway.shutdown()
            return predict, ingest, health

        predict, ingest, health = run(scenario())
        assert predict.status == 503
        assert predict.headers["Retry-After"]
        assert ingest.status == 503
        assert health.status == 200  # observability stays up
        assert health.payload["status"] == "draining"


def _broken_factory(algorithm):
    raise RuntimeError("model store on fire")


class TestDegradedServing:
    def test_degraded_forecast_flags_body_and_header(self):
        async def scenario():
            engine = build_engine(
                breaker=CircuitBreaker(),
                predictor_factory=_broken_factory,
            )
            gateway = await started_gateway(engine=engine)
            response = await gateway.handle_request("GET", "/v1/predict/v00")
            await gateway.shutdown()
            return response

        response = run(scenario())
        assert response.status == 200
        payload = response.payload
        assert payload["degraded"] is True
        assert payload["strategy"] == "baseline"
        assert payload["fallback_reason"]
        assert response.headers[DEGRADED_HEADER] == "true"


class TestHealthAndMetrics:
    def test_health_carries_gateway_counters_and_readiness(self):
        async def scenario():
            gateway = await started_gateway()
            await gateway.handle_request("GET", "/v1/predict/v00")
            response = await gateway.handle_request("GET", "/v1/health")
            await gateway.shutdown()
            return response

        response = run(scenario())
        payload = response.payload
        assert payload["status"] == "ok"
        assert payload["readiness"]["vehicles"] == N_VEHICLES
        assert payload["readiness"]["ready"] == N_VEHICLES
        assert payload["gateway"]["requests"]["predict"] == 1
        assert "vehicles" in payload and "persist_failures" in payload

    def test_metrics_populated_after_traffic(self):
        async def scenario():
            gateway = await started_gateway()
            await asyncio.gather(
                *(
                    gateway.handle_request("GET", "/v1/predict/v00")
                    for _ in range(5)
                )
            )
            await gateway.handle_request("GET", "/v1/predict/ghost")
            response = await gateway.handle_request("GET", "/v1/metrics")
            await gateway.shutdown()
            return response

        payload = run(scenario()).payload
        # /v1/metrics now serves the consolidated registry snapshot;
        # the gateway's own counters live under the "gateway" section.
        metrics = payload["gateway"]
        assert metrics["requests"]["predict"] == 6
        assert metrics["errors"]["predict"] == 1
        assert metrics["responses"]["predict"]["200"] == 5
        assert metrics["responses"]["predict"]["404"] == 1
        latency = metrics["latency_s"]["predict"]
        assert latency["count"] == 6
        assert 0 <= latency["p50"] <= latency["p95"] <= latency["p99"]
        assert metrics["queue_high_water"] >= 1
        for section in ("counters", "gauges", "histograms", "fleet", "drift",
                        "cache", "tracing", "events"):
            assert section in payload

    def test_histogram_percentiles_ordered(self):
        metrics = GatewayMetrics()
        for value in range(100):
            metrics.observe("predict", 200, value / 100.0)
        summary = metrics.snapshot()["latency_s"]["predict"]
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
        assert summary["p50"] == pytest.approx(0.5, abs=0.02)


class TestSocketLayer:
    """One end-to-end smoke over a real localhost socket."""

    @staticmethod
    async def _request(reader, writer, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        data = await reader.readexactly(int(headers["content-length"]))
        return status, json.loads(data)

    def test_http_round_trip_with_keep_alive(self):
        reference = serial_reference()

        async def scenario():
            gateway = FleetGateway(build_engine(), GatewayConfig(port=0))
            host, port = await gateway.serve()
            reader, writer = await asyncio.open_connection(host, port)
            predict = await self._request(
                reader, writer, "GET", "/v1/predict/v00"
            )
            ingest = await self._request(
                reader,
                writer,
                "POST",
                "/v1/ingest",
                {"vehicle_id": "v00", "seconds": 19_000.0},
            )
            health = await self._request(reader, writer, "GET", "/v1/health")
            writer.close()
            await gateway.shutdown()
            return predict, ingest, health

        predict, ingest, health = run(scenario())
        assert predict[0] == 200
        assert Forecast.from_dict(predict[1]) == reference["v00"]
        assert ingest == (200, {"ingested": 1})
        assert health[0] == 200
        assert health[1]["gateway"]["requests"]["predict"] == 1

    def test_malformed_request_line_400(self):
        async def scenario():
            gateway = FleetGateway(build_engine(), GatewayConfig(port=0))
            host, port = await gateway.serve()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            await gateway.shutdown()
            return status

        assert run(scenario()) == 400


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_window_s": -0.001},
            {"max_batch_size": 0},
            {"max_queue": 0},
            {"default_deadline_s": 0.0},
            {"drain_timeout_s": -1.0},
            {"max_body_bytes": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatewayConfig(**kwargs)


class TestEngineHooks:
    def test_readiness_counts_ready_vehicles(self):
        engine = build_engine()
        engine.service.register_vehicle("young")  # zero observed days
        readiness = engine.readiness()
        assert readiness["vehicles"] == N_VEHICLES + 1
        assert readiness["ready"] == N_VEHICLES
        assert readiness["inflight"] == 0

    def test_drain_returns_when_idle(self):
        engine = build_engine()
        assert engine.drain(timeout=0.5) is True
