"""Serving contract of the fused batched predict path.

The batched ``predict_batch`` / engine group-dispatch path swaps the
per-vehicle Python prediction loop for one compiled-kernel call per
shared model identity.  That is only legal if it is *invisible*: every
forecast must equal the serial :class:`MaintenancePredictionService`
path exactly (``Forecast`` is a frozen dataclass, so ``==`` is exact
field-for-field equality including the float prediction), and the
compiled-kernel cache must track lifecycle transitions — promotion,
rollback, checkpoint restore — so a stale flattened model never serves.
"""

import numpy as np
import pytest

from repro.core.registry import make_predictor
from repro.serving.engine import EngineConfig, FleetEngine
from repro.serving.persistence import ModelStore
from repro.serving.service import MaintenancePredictionService

T_V = 200_000.0


def random_fleet(seed: int) -> dict[str, np.ndarray]:
    """Old + semi-new + new vehicles: all Section-4 routing strategies."""
    rng = np.random.default_rng(seed)
    fleet: dict[str, np.ndarray] = {}
    for i in range(3):
        fleet[f"old{i}"] = rng.uniform(14_000, 26_000, size=int(rng.integers(24, 40)))
    for i in range(2):
        fleet[f"semi{i}"] = rng.uniform(17_000, 25_000, size=int(rng.integers(5, 9)))
    fleet["new0"] = rng.uniform(5_000, 20_000, size=2)
    return fleet


def build_serial(usage_map, **kwargs) -> MaintenancePredictionService:
    service = MaintenancePredictionService(t_v=T_V, **kwargs)
    for vehicle_id in sorted(usage_map):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage_map[vehicle_id])
    return service


def serial_forecasts(service):
    return [
        service.predict(vehicle_id)
        for vehicle_id in service.vehicle_ids
        if service.series(vehicle_id).n_days > service.window
    ]


def build_engine(usage_map, config=None, **kwargs) -> FleetEngine:
    engine = FleetEngine(
        t_v=T_V, config=config or EngineConfig(max_workers=1), **kwargs
    )
    engine.register_fleet(usage_map)
    for vehicle_id in sorted(usage_map):
        engine.ingest_history(vehicle_id, usage_map[vehicle_id])
    return engine


class TestBatchedSerialEquivalence:
    """Kernel-batched forecasts == the pre-batching serial path, exactly."""

    @pytest.mark.parametrize("algorithm", ["LR", "RF", "XGB", "LSVR"])
    @pytest.mark.parametrize("window", [0, 3])
    def test_predict_batch_identical_to_serial(self, algorithm, window):
        usage_map = random_fleet(17)
        reference = serial_forecasts(
            build_serial(usage_map, window=window, algorithm=algorithm)
        )
        batched_service = build_serial(
            usage_map, window=window, algorithm=algorithm
        )
        ids = [
            v
            for v in batched_service.vehicle_ids
            if batched_service.series(v).n_days > window
        ]
        assert batched_service.predict_batch(ids) == reference

    def test_engine_predict_all_uses_batched_path(self):
        usage_map = random_fleet(23)
        reference = serial_forecasts(
            build_serial(usage_map, window=2, algorithm="RF")
        )
        engine = build_engine(usage_map, window=2, algorithm="RF")
        assert engine.predict_all() == reference
        stats = engine.service.kernel_cache.stats()
        assert stats["batches"] > 0  # the kernel actually ran
        assert stats["batched_rows"] >= stats["batches"]

    def test_batched_flag_off_matches_batched_on(self):
        usage_map = random_fleet(29)
        on = build_engine(
            usage_map,
            EngineConfig(max_workers=1, batched_predict=True),
            window=0,
            algorithm="RF",
        )
        off = build_engine(
            usage_map,
            EngineConfig(max_workers=2, batched_predict=False),
            window=0,
            algorithm="RF",
        )
        assert on.predict_all() == off.predict_all()
        assert off.service.kernel_cache.stats()["batches"] == 0

    def test_repeat_batches_hit_the_kernel_cache(self):
        usage_map = random_fleet(31)
        engine = build_engine(usage_map, window=0, algorithm="RF")
        engine.predict_all()
        before = engine.service.kernel_cache.stats()
        engine.predict_all()
        after = engine.service.kernel_cache.stats()
        assert after["hits"] > before["hits"]
        # No models changed between batches, so nothing recompiles.
        assert after["compile_count"] == before["compile_count"]

    def test_kernel_section_in_engine_metrics(self):
        engine = build_engine(random_fleet(37), window=0, algorithm="LR")
        engine.predict_all()
        section = engine.metrics_section()["kernel"]
        for key in (
            "hits",
            "misses",
            "hit_rate",
            "invalidations",
            "compile_count",
            "compile_seconds",
            "batches",
            "batch_rows",
        ):
            assert key in section


class _Dataset:
    def __init__(self, X, y):
        self.X = np.asarray(X, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)
        self.n_records = len(self.X)


def _challenger(seed: int):
    """A fitted RF predictor distinct from any service-trained champion."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(100_000, 200_000, size=(40, 1))
    y = X[:, 0] / 19_000.0 + rng.normal(0.0, 0.3, size=40)
    predictor = make_predictor("RF")
    predictor.fit(_Dataset(X, y))
    return predictor


class TestLifecycleInvalidation:
    """Promotion -> rollback -> checkpoint restore each recompile."""

    @pytest.fixture
    def stack(self, tmp_path):
        usage_map = {"v0": np.random.default_rng(5).uniform(14_000, 26_000, 30)}
        service = build_serial(
            usage_map,
            window=0,
            algorithm="RF",
            store=ModelStore(tmp_path / "models"),
        )
        service.predict_batch(["v0"])  # trains + stores champion v1
        return service

    def test_promotion_serves_the_new_compiled_model(self, stack):
        service = stack
        assert service.predict_batch(["v0"])[0].model_version == 1
        before = service.kernel_cache.stats()
        challenger = _challenger(99)
        cycles = service._vehicles["v0"].model_trained_cycles
        version = service.store.save("v0.per-vehicle", challenger)
        service.apply_lifecycle_event(
            "promote",
            "v0",
            version=version,
            predictor=challenger,
            trained_cycles=cycles,
        )
        after = service.kernel_cache.stats()
        assert after["invalidations"] > before["invalidations"]
        batched = service.predict_batch(["v0"])[0]
        serial = service.predict("v0")
        assert batched == serial
        assert batched.model_version == version
        # The served number really is the challenger's, not a stale
        # compiled image of the old champion.
        row = np.array([[batched.usage_left]])
        assert batched.days_to_maintenance == float(
            max(challenger.predict(row)[0], 0.0)
        )
        assert service.kernel_cache.stats()["misses"] > before["misses"]

    def test_rollback_recompiles_the_prior_version(self, stack):
        service = stack
        challenger = _challenger(101)
        cycles = service._vehicles["v0"].model_trained_cycles
        v2 = service.store.save("v0.per-vehicle", challenger)
        service.apply_lifecycle_event(
            "promote",
            "v0",
            version=v2,
            predictor=challenger,
            trained_cycles=cycles,
        )
        promoted = service.predict_batch(["v0"])[0]
        service.apply_lifecycle_event("rollback", "v0", version=1)
        rolled = service.predict_batch(["v0"])[0]
        assert rolled.model_version == 1
        assert rolled == service.predict("v0")
        # v1 and v2 are different models; serving must actually change.
        assert rolled.days_to_maintenance != promoted.days_to_maintenance
        artifact = service.store.load("v0.per-vehicle", 1)
        row = np.array([[rolled.usage_left]])
        assert rolled.days_to_maintenance == float(
            max(artifact.predictor.predict(row)[0], 0.0)
        )

    def test_checkpoint_restore_invalidates_compiled_kernels(
        self, stack, tmp_path
    ):
        service = stack
        expected = service.predict_batch(["v0"])[0]
        snapshot = service.state_dict()
        restored = build_serial(
            {},
            window=0,
            algorithm="RF",
            store=ModelStore(tmp_path / "models"),
        )
        restored.predict_batch  # the batched entry point must survive restore
        restored.load_state_dict(snapshot)
        assert restored.kernel_cache.stats()["entries"] == 0
        first = restored.predict_batch(["v0"])[0]
        assert first == expected
        assert restored.kernel_cache.stats()["misses"] >= 1

    def test_live_restore_drops_stale_compiled_entries(self, stack):
        service = stack
        before = service.predict_batch(["v0"])[0]
        snapshot = service.state_dict()
        compiled_entries = service.kernel_cache.stats()["entries"]
        assert compiled_entries >= 1
        service.load_state_dict(snapshot)
        stats = service.kernel_cache.stats()
        assert stats["entries"] == 0
        assert stats["invalidations"] >= compiled_entries
        assert service.predict_batch(["v0"])[0] == before
