"""Unit tests for repro.serving.persistence."""

import numpy as np
import pytest

from repro.learn.linear import LinearRegression
from repro.serving.persistence import ModelStore


@pytest.fixture
def fitted_model(rng):
    X = rng.normal(size=(30, 2))
    return LinearRegression().fit(X, X[:, 0] * 2 + 1)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, fitted_model, rng):
        store = ModelStore(tmp_path)
        version = store.save("v01.per-vehicle", fitted_model)
        assert version == 1
        artifact = store.load("v01.per-vehicle")
        X = rng.normal(size=(5, 2))
        assert np.allclose(
            artifact.predictor.predict(X), fitted_model.predict(X)
        )

    def test_metadata_stored(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model, {"algorithm": "LR", "window": 6})
        artifact = store.load("m")
        assert artifact.algorithm == "LR"
        assert artifact.metadata["window"] == 6
        assert artifact.metadata["predictor_type"] == "LinearRegression"
        assert "created_at" in artifact.metadata

    def test_versions_increment(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        assert store.save("m", fitted_model) == 1
        assert store.save("m", fitted_model) == 2
        assert store.versions("m") == [1, 2]

    def test_load_specific_version(self, tmp_path, rng):
        store = ModelStore(tmp_path)
        X = rng.normal(size=(20, 1))
        a = LinearRegression().fit(X, 2 * X[:, 0])
        b = LinearRegression().fit(X, 5 * X[:, 0])
        store.save("m", a)
        store.save("m", b)
        old = store.load("m", version=1)
        latest = store.load("m")
        assert old.predictor.coef_[0] == pytest.approx(2.0)
        assert latest.predictor.coef_[0] == pytest.approx(5.0)
        assert latest.version == 2

    def test_missing_key(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(KeyError, match="No stored models"):
            store.load("ghost")

    def test_missing_version(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        with pytest.raises(KeyError, match="Version 9"):
            store.load("m", version=9)

    def test_keys_listing(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("b-model", fitted_model)
        store.save("a-model", fitted_model)
        assert store.keys() == ["a-model", "b-model"]

    def test_delete(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        store.delete("m", 1)
        assert store.versions("m") == [2]
        with pytest.raises(KeyError):
            store.delete("m", 1)

    def test_invalid_key_rejected(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        with pytest.raises(ValueError, match="Invalid model key"):
            store.save("../escape", fitted_model)
        with pytest.raises(ValueError):
            store.save("", fitted_model)

    def test_empty_store(self, tmp_path):
        store = ModelStore(tmp_path / "nowhere")
        assert store.keys() == []
        assert store.versions("m") == []
