"""Unit tests for repro.serving.persistence."""

import json

import numpy as np
import pytest

from repro.learn.linear import LinearRegression
from repro.serving.persistence import ArtifactCorruptError, ModelStore
from repro.serving.reliability import RetryPolicy


@pytest.fixture
def fitted_model(rng):
    X = rng.normal(size=(30, 2))
    return LinearRegression().fit(X, X[:, 0] * 2 + 1)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, fitted_model, rng):
        store = ModelStore(tmp_path)
        version = store.save("v01.per-vehicle", fitted_model)
        assert version == 1
        artifact = store.load("v01.per-vehicle")
        X = rng.normal(size=(5, 2))
        assert np.allclose(
            artifact.predictor.predict(X), fitted_model.predict(X)
        )

    def test_metadata_stored(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model, {"algorithm": "LR", "window": 6})
        artifact = store.load("m")
        assert artifact.algorithm == "LR"
        assert artifact.metadata["window"] == 6
        assert artifact.metadata["predictor_type"] == "LinearRegression"
        assert "created_at" in artifact.metadata

    def test_versions_increment(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        assert store.save("m", fitted_model) == 1
        assert store.save("m", fitted_model) == 2
        assert store.versions("m") == [1, 2]

    def test_load_specific_version(self, tmp_path, rng):
        store = ModelStore(tmp_path)
        X = rng.normal(size=(20, 1))
        a = LinearRegression().fit(X, 2 * X[:, 0])
        b = LinearRegression().fit(X, 5 * X[:, 0])
        store.save("m", a)
        store.save("m", b)
        old = store.load("m", version=1)
        latest = store.load("m")
        assert old.predictor.coef_[0] == pytest.approx(2.0)
        assert latest.predictor.coef_[0] == pytest.approx(5.0)
        assert latest.version == 2

    def test_missing_key(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(KeyError, match="No stored models"):
            store.load("ghost")

    def test_missing_version(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        with pytest.raises(KeyError, match="Version 9"):
            store.load("m", version=9)

    def test_keys_listing(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("b-model", fitted_model)
        store.save("a-model", fitted_model)
        assert store.keys() == ["a-model", "b-model"]

    def test_delete(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        store.delete("m", 1)
        assert store.versions("m") == [2]
        with pytest.raises(KeyError):
            store.delete("m", 1)

    def test_invalid_key_rejected(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        with pytest.raises(ValueError, match="Invalid model key"):
            store.save("../escape", fitted_model)
        with pytest.raises(ValueError):
            store.save("", fitted_model)

    def test_empty_store(self, tmp_path):
        store = ModelStore(tmp_path / "nowhere")
        assert store.keys() == []
        assert store.versions("m") == []

    def test_latest_version(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        assert store.latest_version("m") is None
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        assert store.latest_version("m") == 2


class TestPrune:
    def saved(self, tmp_path, fitted_model, n=6) -> ModelStore:
        store = ModelStore(tmp_path)
        for _ in range(n):
            store.save("m", fitted_model)
        return store

    def test_keeps_newest_versions(self, tmp_path, fitted_model):
        store = self.saved(tmp_path, fitted_model)
        removed = store.prune("m", keep_last=2)
        assert removed == [1, 2, 3, 4]
        assert store.versions("m") == [5, 6]

    def test_protected_versions_survive_any_sweep(self, tmp_path, fitted_model):
        store = self.saved(tmp_path, fitted_model)
        removed = store.prune("m", keep_last=1, keep={2, 4})
        assert removed == [1, 3, 5]
        # The active/pinned versions outlive their age class.
        assert store.versions("m") == [2, 4, 6]

    def test_none_entries_in_keep_ignored(self, tmp_path, fitted_model):
        store = self.saved(tmp_path, fitted_model, n=3)
        store.prune("m", keep_last=1, keep={None, 1})
        assert store.versions("m") == [1, 3]

    def test_noop_when_under_retention(self, tmp_path, fitted_model):
        store = self.saved(tmp_path, fitted_model, n=2)
        assert store.prune("m", keep_last=5) == []
        assert store.versions("m") == [1, 2]

    def test_rejects_bad_keep_last(self, tmp_path, fitted_model):
        store = self.saved(tmp_path, fitted_model, n=1)
        with pytest.raises(ValueError, match="keep_last"):
            store.prune("m", keep_last=0)


class TestCorruptionHandling:
    def corrupt_pickle(self, store, key, version):
        pkl_path, _ = store._version_paths(key, version)
        payload = pkl_path.read_bytes()
        pkl_path.write_bytes(payload[: len(payload) // 2])

    def test_checksum_written_to_sidecar(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        _, json_path = store._version_paths("m", 1)
        metadata = json.loads(json_path.read_text())
        assert len(metadata["sha256"]) == 64

    def test_truncated_pickle_raises_typed_error(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        self.corrupt_pickle(store, "m", 1)
        with pytest.raises(ArtifactCorruptError, match="checksum mismatch"):
            store.load("m", version=1)

    def test_malformed_metadata_raises_typed_error(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        _, json_path = store._version_paths("m", 1)
        json_path.write_text("{not json")
        with pytest.raises(ArtifactCorruptError, match="malformed metadata"):
            store.load("m", version=1)

    def test_missing_sidecar_raises_typed_error(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        _, json_path = store._version_paths("m", 1)
        json_path.unlink()
        with pytest.raises(ArtifactCorruptError, match="missing file"):
            store.load("m", version=1)

    def test_error_carries_key_and_version(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        self.corrupt_pickle(store, "m", 1)
        with pytest.raises(ArtifactCorruptError) as excinfo:
            store.load("m", version=1)
        assert excinfo.value.key == "m"
        assert excinfo.value.version == 1
        assert isinstance(excinfo.value, ValueError)  # old handlers still work

    def test_fallback_to_newest_readable_version(self, tmp_path, rng):
        store = ModelStore(tmp_path)
        X = rng.normal(size=(20, 1))
        store.save("m", LinearRegression().fit(X, 2 * X[:, 0]))
        store.save("m", LinearRegression().fit(X, 5 * X[:, 0]))
        store.save("m", LinearRegression().fit(X, 9 * X[:, 0]))
        self.corrupt_pickle(store, "m", 3)
        artifact = store.load("m")
        assert artifact.version == 2
        assert artifact.predictor.coef_[0] == pytest.approx(5.0)

    def test_corrupt_versions_are_quarantined(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        self.corrupt_pickle(store, "m", 2)
        store.load("m")
        assert store.versions("m") == [1]  # corrupt one moved out
        assert store.quarantined("m") == [2]
        quarantine_dir = store._key_dir("m") / "quarantine"
        assert (quarantine_dir / "v0002.pkl").exists()
        assert (quarantine_dir / "v0002.json").exists()

    def test_quarantine_opt_out(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        self.corrupt_pickle(store, "m", 2)
        artifact = store.load("m", quarantine=False)
        assert artifact.version == 1
        assert store.versions("m") == [1, 2]  # left in place

    def test_no_fallback_raises_on_newest(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        self.corrupt_pickle(store, "m", 2)
        with pytest.raises(ArtifactCorruptError):
            store.load("m", fallback=False)

    def test_all_versions_corrupt(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        self.corrupt_pickle(store, "m", 1)
        with pytest.raises(ArtifactCorruptError, match="no readable version"):
            store.load("m")

    def test_legacy_artifact_without_checksum_loads(self, tmp_path, fitted_model):
        """Pre-hardening sidecars have no sha256 — still loadable."""
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        _, json_path = store._version_paths("m", 1)
        metadata = json.loads(json_path.read_text())
        del metadata["sha256"]
        json_path.write_text(json.dumps(metadata))
        assert store.load("m").version == 1


class TestStoreRetry:
    def test_transient_write_errors_are_retried(self, tmp_path, fitted_model, monkeypatch):
        import os as os_module

        real_replace = os_module.replace
        failures = {"n": 2}

        def flaky_replace(src, dst):
            if failures["n"] > 0:
                failures["n"] -= 1
                raise OSError("disk hiccup")
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.serving.persistence.os.replace", flaky_replace
        )
        retry = RetryPolicy(attempts=3, sleep=lambda _s: None)
        store = ModelStore(tmp_path, retry=retry)
        assert store.save("m", fitted_model) == 1
        assert retry.retries == 2
        monkeypatch.undo()
        assert store.load("m").version == 1

    def test_exhausted_retries_reraise(self, tmp_path, fitted_model, monkeypatch):
        monkeypatch.setattr(
            "repro.serving.persistence.os.replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("dead disk")),
        )
        retry = RetryPolicy(attempts=2, sleep=lambda _s: None)
        store = ModelStore(tmp_path, retry=retry)
        with pytest.raises(OSError, match="dead disk"):
            store.save("m", fitted_model)
        assert retry.retries == 1
