"""Sharded serving suite: routing properties, pool equivalence, gateway.

The sharding contract has three layers:

* the consistent-hash router is **total** (every string routes),
  **deterministic** across processes and ``PYTHONHASHSEED`` values,
  and **stable** for a fixed shard count — growing the ring moves only
  keys claimed by the new shard;
* a :class:`ShardedFleetEngine` over an all-OLD fleet produces
  forecasts **bit-identical** to the serial single-engine path (OLD
  vehicles serve per-vehicle models, so partitioning the fleet cannot
  change any forecast input);
* the gateway scatter-gathers fleet-wide endpoints across every shard
  and routes per-vehicle traffic to the owning lane.
"""

import asyncio
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.serving import FleetEngine, FleetGateway, GatewayConfig
from repro.serving.sharding import (
    ShardRouter,
    ShardedFleetEngine,
    merge_fleet_health,
)

T_V = 50_000.0
WINDOW = 2
DAYS = 12  # 12 days x ~10k usage >> t_v, so every vehicle is OLD


def _fleet(n=12, seed=5):
    rng = np.random.default_rng(seed)
    ids = [f"veh-{i:03d}" for i in range(n)]
    return ids, {v: rng.uniform(8_000, 12_000, size=DAYS) for v in ids}


def _build_serial(ids, usage):
    engine = FleetEngine(t_v=T_V, window=WINDOW, algorithm="LR")
    engine.register_fleet(ids)
    for vehicle_id in ids:
        engine.ingest_history(vehicle_id, usage[vehicle_id])
    return engine


def _build_pool(ids, usage, n_shards, **kwargs):
    pool = ShardedFleetEngine(
        n_shards, t_v=T_V, window=WINDOW, algorithm="LR", **kwargs
    )
    pool.register_fleet(ids)
    for vehicle_id in ids:
        pool.ingest_history(vehicle_id, usage[vehicle_id])
    return pool


class TestShardRouter:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(0)
        with pytest.raises(ValueError, match="replicas"):
            ShardRouter(2, replicas=0)

    def test_routing_is_total_and_in_range(self):
        router = ShardRouter(5)
        ids = [f"v{i}" for i in range(500)]
        ids += ["", " ", "véhicule-Ω", "a" * 300, "\x00\x01", "v1/v2"]
        for vehicle_id in ids:
            assert 0 <= router.shard_for(vehicle_id) < 5

    def test_routing_is_deterministic_within_process(self):
        first = ShardRouter(4)
        second = ShardRouter(4)
        for i in range(300):
            vehicle_id = f"veh-{i}"
            assert first.shard_for(vehicle_id) == second.shard_for(vehicle_id)

    def test_routing_uses_every_shard(self):
        router = ShardRouter(4)
        owners = {router.shard_for(f"veh-{i}") for i in range(400)}
        assert owners == {0, 1, 2, 3}

    @pytest.mark.parametrize("seed", ["0", "42", "random"])
    def test_routing_stable_across_hash_seeds(self, seed):
        # The ring is keyed by BLAKE2, never by str.__hash__, so a
        # subprocess with a different PYTHONHASHSEED must route every
        # vehicle identically.
        script = (
            "import json, sys\n"
            "from repro.serving.sharding import ShardRouter\n"
            "router = ShardRouter(4)\n"
            "print(json.dumps({v: router.shard_for(v)"
            " for v in sys.argv[1:]}))\n"
        )
        ids = [f"veh-{i:03d}" for i in range(64)] + ["Ω", "truck/7"]
        env = dict(os.environ, PYTHONHASHSEED=seed)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script, *ids],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        local = ShardRouter(4)
        assert json.loads(out.stdout) == {
            vehicle_id: local.shard_for(vehicle_id) for vehicle_id in ids
        }

    def test_growing_the_ring_moves_only_keys_to_the_new_shard(self):
        # Consistent hashing: adding shard N leaves every key either on
        # its old shard or on the new one — and claims a nonzero,
        # bounded slice.
        ids = [f"veh-{i:04d}" for i in range(2000)]
        before = ShardRouter(4)
        after = ShardRouter(5)
        moved = 0
        for vehicle_id in ids:
            old = before.shard_for(vehicle_id)
            new = after.shard_for(vehicle_id)
            if new != old:
                assert new == 4, (vehicle_id, old, new)
                moved += 1
        assert 0 < moved < len(ids) // 2

    def test_partition_groups_by_owner_preserving_order(self):
        router = ShardRouter(3)
        ids = [f"veh-{i}" for i in range(30)]
        groups = router.partition(ids)
        assert sorted(v for ids_ in groups.values() for v in ids_) == sorted(
            ids
        )
        for shard, members in groups.items():
            assert [v for v in ids if router.shard_for(v) == shard] == members


class TestShardedFleetEngine:
    def test_forecasts_bit_identical_to_serial(self):
        ids, usage = _fleet()
        serial = _build_serial(ids, usage)
        reference = {
            f.vehicle_id: f.to_dict() for f in serial.predict_many(ids)
        }
        with _build_pool(ids, usage, 3) as pool:
            forecasts = pool.predict_many(ids)
            assert [f.vehicle_id for f in forecasts] == sorted(ids)
            for forecast in forecasts:
                assert forecast.to_dict() == reference[forecast.vehicle_id]
            # predict_all over the same fleet: same forecasts again.
            for forecast in pool.predict_all():
                assert forecast.to_dict() == reference[forecast.vehicle_id]

    def test_single_shard_pool_matches_serial(self):
        ids, usage = _fleet(n=6)
        serial = _build_serial(ids, usage)
        reference = [f.to_dict() for f in serial.predict_many(ids)]
        with _build_pool(ids, usage, 1) as pool:
            assert [
                f.to_dict() for f in pool.predict_many(ids)
            ] == reference

    def test_parent_bookkeeping_tracks_workers(self):
        ids, usage = _fleet(n=8)
        with _build_pool(ids, usage, 3) as pool:
            assert pool.vehicle_ids == sorted(ids)
            assert all(pool.n_days(v) == DAYS for v in ids)
            assert not pool.has_vehicle("veh-999")
            pool.ingest_day({v: 9_000.0 for v in ids})
            assert all(pool.n_days(v) == DAYS + 1 for v in ids)
            ingested, error = pool.ingest_records(
                [("veh-999", 9_500.0, None), (ids[0], 9_500.0, None)]
            )
            assert ingested == 2 and error is None
            assert pool.has_vehicle("veh-999")
            assert pool.n_days("veh-999") == 1
            assert pool.n_days(ids[0]) == DAYS + 2

    def test_guarded_drop_keeps_bookkeeping_authoritative(self):
        # A NaN reading is screened by the per-shard IngestionGuard and
        # never lands; the parent's day count must come from the worker
        # (a parent-side increment would drift and poison admission
        # control with false 200s).
        ids, usage = _fleet(n=4)
        with _build_pool(ids, usage, 2, resilient=True) as pool:
            ingested, error = pool.ingest_records(
                [(ids[0], float("nan"), None)]
            )
            assert error is None
            assert pool.n_days(ids[0]) == DAYS  # dropped, not counted

    def test_health_and_metrics_merge_across_shards(self):
        ids, usage = _fleet(n=9)
        with _build_pool(ids, usage, 3) as pool:
            pool.predict_many(ids)  # populate per-shard cycle caches
            health = pool.health()
            assert sorted(health.vehicles) == sorted(ids)
            readiness = pool.readiness()
            assert readiness["vehicles"] == len(ids)
            assert readiness["ready"] == len(ids)
            assert set(readiness["shards"]) == {"0", "1", "2"}
            stats = pool.cache_stats
            assert stats["misses"] >= len(ids)
            sections = pool.metrics_sections()
            assert len(sections) == 3
            assert sum(s["fleet"]["vehicles"] for s in sections) == len(ids)

    def test_rejects_factory_with_service_kwargs(self):
        with pytest.raises(ValueError, match="service_kwargs"):
            ShardedFleetEngine(2, lambda shard: None, t_v=T_V)

    def test_close_is_idempotent(self):
        ids, usage = _fleet(n=4)
        pool = _build_pool(ids, usage, 2)
        assert pool.drain(5.0)
        pool.close()
        pool.close()
        assert all(not worker.process.is_alive() for worker in pool.workers)

    def test_durable_partitions_recover_per_shard(self, tmp_path):
        ids, usage = _fleet(n=6)
        state_dir = tmp_path / "state"
        pool = _build_pool(ids, usage, 2, durable_dir=state_dir)
        try:
            pool.ingest_day({v: 9_100.0 for v in ids})
            assert pool.durability.ready
            status = pool.durability.status()
            assert set(status["shards"]) == {"0", "1"}
        finally:
            pool.close()  # checkpoints each partition
        assert (state_dir / "shard-00").is_dir()
        assert (state_dir / "shard-01").is_dir()
        recovered = ShardedFleetEngine(
            2, t_v=T_V, window=WINDOW, algorithm="LR", durable_dir=state_dir
        )
        try:
            assert recovered.vehicle_ids == sorted(ids)
            assert all(recovered.n_days(v) == DAYS + 1 for v in ids)
        finally:
            recovered.close()

    def test_merge_fleet_health_unions_disjoint_reports(self):
        ids, usage = _fleet(n=6)
        serial = _build_serial(ids, usage)
        whole = serial.health()
        half_a = _build_serial(ids[:3], usage).health()
        half_b = _build_serial(ids[3:], usage).health()
        merged = merge_fleet_health([half_a, half_b])
        assert sorted(merged.vehicles) == sorted(whole.vehicles)


class TestShardedGateway:
    def _run(self, coro):
        asyncio.run(coro)

    def test_predicts_route_and_match_serial(self):
        ids, usage = _fleet(n=10)
        serial = _build_serial(ids, usage)
        reference = {
            f.vehicle_id: f.to_dict() for f in serial.predict_many(ids)
        }
        pool = _build_pool(ids, usage, 3)

        async def scenario():
            gateway = FleetGateway(
                pool, GatewayConfig(batch_window_s=0.002)
            )
            await gateway.start()
            try:
                response = await gateway.handle_request(
                    "GET", f"/v1/predict/{ids[0]}"
                )
                assert response.status == 200
                assert response.payload == reference[ids[0]]
                body = json.dumps({"vehicle_ids": ids}).encode()
                response = await gateway.handle_request(
                    "POST", "/v1/predict:batch", body
                )
                assert response.status == 200
                assert response.payload["errors"] == 0
                for forecast in response.payload["forecasts"]:
                    assert forecast == reference[forecast["vehicle_id"]]
                response = await gateway.handle_request(
                    "GET", "/v1/predict/veh-999"
                )
                assert response.status == 404
            finally:
                await gateway.shutdown()

        try:
            self._run(scenario())
        finally:
            pool.close()

    def test_scatter_gather_admin_endpoints(self):
        ids, usage = _fleet(n=8)
        pool = _build_pool(ids, usage, 4, lifecycle=True)

        async def scenario():
            gateway = FleetGateway(pool, GatewayConfig())
            await gateway.start()
            try:
                for path in ("/v1/health", "/v1/fleet/health"):
                    response = await gateway.handle_request("GET", path)
                    assert response.status == 200
                    assert response.payload["shards"] == 4
                    assert sorted(response.payload["vehicles"]) == sorted(
                        ids
                    )
                    assert set(
                        response.payload["readiness"]["shards"]
                    ) == {"0", "1", "2", "3"}
                response = await gateway.handle_request(
                    "GET", "/v1/metrics"
                )
                assert response.status == 200
                snapshot = response.payload
                assert set(snapshot["shard_sections"]) == {
                    "0", "1", "2", "3"
                }
                assert snapshot["fleet"]["vehicles"] == len(ids)
                response = await gateway.handle_request(
                    "GET", "/v1/lifecycle"
                )
                assert response.status == 200
                assert set(response.payload["shards"]) == {
                    "0", "1", "2", "3"
                }
                response = await gateway.handle_request(
                    "POST", f"/v1/lifecycle/{ids[0]}/promote"
                )
                assert response.status == 200
                response = await gateway.handle_request(
                    "POST", "/v1/lifecycle/veh-999/promote"
                )
                assert response.status == 404
            finally:
                await gateway.shutdown()

        try:
            self._run(scenario())
        finally:
            pool.close()

    def test_ingest_scatters_and_unlocks_prediction(self):
        ids, usage = _fleet(n=6)
        pool = _build_pool(ids, usage, 2)

        async def scenario():
            gateway = FleetGateway(pool, GatewayConfig())
            await gateway.start()
            try:
                readings = [
                    {"vehicle_id": v, "seconds": 9_000.0} for v in ids
                ] + [{"vehicle_id": "veh-new", "seconds": 9_000.0}]
                response = await gateway.handle_request(
                    "POST",
                    "/v1/ingest",
                    json.dumps({"readings": readings}).encode(),
                )
                assert response.status == 200
                assert response.payload["ingested"] == len(readings)
                assert pool.n_days("veh-new") == 1
                # A vehicle below window+1 days is rejected at admission
                # using the parent's bookkeeping, no worker round trip.
                response = await gateway.handle_request(
                    "GET", "/v1/predict/veh-new"
                )
                assert response.status == 422
            finally:
                await gateway.shutdown()

        try:
            self._run(scenario())
        finally:
            pool.close()

    def test_shard_labels_on_batch_metrics(self):
        ids, usage = _fleet(n=8)
        pool = _build_pool(ids, usage, 2)

        async def scenario():
            gateway = FleetGateway(pool, GatewayConfig())
            await gateway.start()
            try:
                body = json.dumps({"vehicle_ids": ids}).encode()
                response = await gateway.handle_request(
                    "POST", "/v1/predict:batch", body
                )
                assert response.status == 200
                shard_stats = gateway.metrics.snapshot()["shards"]
                assert set(shard_stats) == {"0", "1"}
                assert (
                    sum(
                        entry["batch_sizes"]["count"]
                        for entry in shard_stats.values()
                    )
                    > 0
                )
            finally:
                await gateway.shutdown()

        try:
            self._run(scenario())
        finally:
            pool.close()
