"""Unit tests for the resilience layer (repro.serving.reliability)."""

import numpy as np
import pytest

from repro.serving.reliability import (
    AnomalyKind,
    AnomalyPolicy,
    CircuitBreaker,
    GuardPolicies,
    IngestionGuard,
    RetryPolicy,
)
from repro.serving.service import MaintenancePredictionService

T_V = 200_000.0


class TestGuardClassification:
    def make(self, **kwargs):
        return IngestionGuard(GuardPolicies(**kwargs))

    def test_clean_reading_passes_untouched(self):
        guard = IngestionGuard()
        decision = guard.screen("v", 20_000.0, day=0)
        assert decision.accepted and decision.value == 20_000.0
        assert decision.anomaly is None
        assert guard.accepted_count("v") == 1
        assert guard.anomaly_counts("v") == {}

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite(self, bad):
        guard = IngestionGuard()
        assert guard.classify("v", bad, day=None) is AnomalyKind.NON_FINITE

    def test_negative_and_too_large(self):
        guard = IngestionGuard()
        assert guard.classify("v", -5.0, day=None) is AnomalyKind.NEGATIVE
        assert guard.classify("v", 90_000.0, day=None) is AnomalyKind.TOO_LARGE
        assert guard.classify("v", 86_400.0, day=None) is None
        assert guard.classify("v", 0.0, day=None) is None

    def test_duplicate_and_out_of_order_need_day_index(self):
        guard = IngestionGuard()
        assert guard.screen("v", 100.0, day=0).accepted
        assert guard.screen("v", 100.0, day=1).accepted
        dup = guard.screen("v", 100.0, day=1)
        assert dup.anomaly is AnomalyKind.DUPLICATE_DAY
        stale = guard.screen("v", 100.0, day=0)
        assert stale.anomaly is AnomalyKind.OUT_OF_ORDER
        # Without day metadata, ordering anomalies are undetectable.
        assert guard.screen("v", 100.0).accepted

    def test_ordering_anomalies_leave_high_water_mark(self):
        guard = IngestionGuard()
        guard.screen("v", 100.0, day=5)
        guard.screen("v", 100.0, day=2)  # out-of-order, dropped
        assert guard.screen("v", 100.0, day=6).accepted  # 6 > 5 still clean

    def test_gap_in_days_is_not_an_anomaly(self):
        guard = IngestionGuard()
        guard.screen("v", 100.0, day=0)
        assert guard.screen("v", 100.0, day=7).accepted  # dropped days happen


class TestGuardPolicies:
    def test_clamp(self):
        guard = IngestionGuard(
            GuardPolicies(
                negative=AnomalyPolicy.CLAMP, too_large=AnomalyPolicy.CLAMP
            )
        )
        assert guard.screen("v", -10.0).value == 0.0
        assert guard.screen("v", 100_000.0).value == 86_400.0

    def test_impute_from_recent_average(self):
        guard = IngestionGuard(
            GuardPolicies(non_finite=AnomalyPolicy.IMPUTE), impute_window=3
        )
        recent = [10_000.0, 20_000.0, 30_000.0, 40_000.0]
        decision = guard.screen("v", float("nan"), recent=recent)
        assert decision.value == pytest.approx(30_000.0)  # mean of last 3

    def test_impute_without_history_is_zero(self):
        guard = IngestionGuard(GuardPolicies(non_finite=AnomalyPolicy.IMPUTE))
        assert guard.screen("v", float("nan"), recent=[]).value == 0.0

    def test_reject_drops_without_dead_letter(self):
        guard = IngestionGuard(GuardPolicies(negative=AnomalyPolicy.REJECT))
        decision = guard.screen("v", -1.0)
        assert not decision.accepted
        assert guard.dead_letters() == []
        assert guard.anomaly_counts("v") == {"negative": 1}
        assert guard.policy_counts("v") == {"reject": 1}

    def test_quarantine_keeps_dead_letter(self):
        guard = IngestionGuard()
        guard.screen("v", float("nan"), day=4)
        (record,) = guard.dead_letters("v")
        assert record.day == 4 and np.isnan(record.value)
        assert record.anomaly is AnomalyKind.NON_FINITE
        assert "dead-letter" in str(record)

    def test_dead_letter_cap(self):
        guard = IngestionGuard(max_dead_letters=2)
        for _ in range(5):
            guard.screen("v", float("nan"))
        assert len(guard.dead_letters()) == 2
        assert guard.anomaly_counts("v") == {"non-finite": 5}  # still counted

    def test_clamp_invalid_for_non_finite(self):
        with pytest.raises(ValueError, match="clamp"):
            GuardPolicies(non_finite=AnomalyPolicy.CLAMP)

    def test_ordering_anomalies_must_drop(self):
        with pytest.raises(ValueError, match="duplicate_day"):
            GuardPolicies(duplicate_day=AnomalyPolicy.IMPUTE)
        with pytest.raises(ValueError, match="out_of_order"):
            GuardPolicies(out_of_order=AnomalyPolicy.CLAMP)

    def test_fleet_wide_counters(self):
        guard = IngestionGuard()
        guard.screen("a", float("nan"))
        guard.screen("b", -1.0)
        guard.screen("b", 99_999.0)
        assert guard.anomaly_counts() == {
            "non-finite": 1,
            "negative": 1,
            "too-large": 1,
        }
        assert sorted(guard.vehicle_ids) == ["a", "b"]


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3)
        assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.allow("k")  # not open yet
        breaker.record_failure("k")
        assert breaker.is_open("k")
        assert not breaker.allow("k")

    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure("k")
        assert not breaker.allow("k")
        assert not breaker.allow("k")
        assert breaker.allow("k")  # half-open trial
        breaker.record_success("k")
        assert not breaker.is_open("k")
        assert breaker.allow("k")

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert not breaker.is_open("k")  # never 2 consecutive

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5)
        breaker.record_failure("a")
        assert not breaker.allow("a")
        assert breaker.allow("b")

    def test_counters_and_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure("k")
        breaker.allow("k")
        snapshot = breaker.snapshot()
        assert snapshot["k"] == {"failures": 1, "skips": 1, "open": True}
        assert breaker.failure_count() == 1
        assert breaker.skip_count() == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return "ok"

        retry = RetryPolicy(attempts=3, sleep=lambda _s: None)
        assert retry.call(flaky) == "ok"
        assert retry.retries == 2

    def test_exhausted_retries_reraise(self):
        retry = RetryPolicy(attempts=2, sleep=lambda _s: None)

        def always():
            raise OSError("down")

        with pytest.raises(OSError, match="down"):
            retry.call(always)
        assert retry.retries == 1

    def test_non_retryable_errors_propagate_immediately(self):
        retry = RetryPolicy(attempts=3, sleep=lambda _s: None)
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise KeyError("not io")

        with pytest.raises(KeyError):
            retry.call(boom)
        assert calls["n"] == 1

    def test_backoff_is_jittered_bounded_and_seeded(self):
        def run(seed):
            retry = RetryPolicy(
                attempts=4, base_delay=0.1, max_delay=0.15, seed=seed,
                sleep=lambda _s: None,
            )
            with pytest.raises(OSError):
                retry.call(lambda: (_ for _ in ()).throw(OSError()))
            return retry.slept

        first, second = run(1), run(1)
        assert first == second  # deterministic schedule
        assert len(first) == 3
        for idx, delay in enumerate(first):
            cap = min(0.1 * 2**idx, 0.15)
            assert 0.5 * cap <= delay < cap or delay == pytest.approx(cap)

    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestFleetHealthReport:
    def build_service(self):
        service = MaintenancePredictionService(
            t_v=T_V,
            window=0,
            algorithm="LR",
            guard=IngestionGuard(),
            breaker=CircuitBreaker(),
        )
        service.register_vehicle("v01")
        return service

    def test_counters_roll_up(self):
        service = self.build_service()
        service.ingest_series("v01", [20_000.0] * 10)
        service.ingest("v01", float("nan"))  # quarantined
        service.ingest("v01", -5.0)  # clamped
        health = service.health()
        vehicle = health.vehicles["v01"]
        assert vehicle.anomalies == {"non-finite": 1, "negative": 1}
        assert vehicle.quarantined == 1
        assert vehicle.dropped == 1
        assert health.total_anomalies() == {"non-finite": 1, "negative": 1}
        assert health.total_quarantined() == 1
        assert health.persist_failures == 0

    def test_render_mentions_flagged_vehicles(self):
        service = self.build_service()
        service.ingest("v01", float("inf"))
        text = service.health().render()
        assert "v01" in text and "non-finite=1" in text

    def test_healthy_fleet_renders_cleanly(self):
        service = self.build_service()
        service.ingest_series("v01", [20_000.0] * 5)
        text = service.health().render()
        assert "readings flagged : 0" in text
