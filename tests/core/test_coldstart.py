"""Unit tests for repro.core.coldstart (Section 4.4)."""

import datetime as dt

import numpy as np
import pytest

from repro.core.coldstart import (
    ColdStartConfig,
    ColdStartExperiment,
    aggregate_by_label,
    first_cycle_dataset,
    half_cycle_day,
)
from repro.core.series import VehicleSeries
from repro.fleet.generator import FleetGenerator


@pytest.fixture(scope="module")
def fleet_series():
    fleet = FleetGenerator(
        n_vehicles=8,
        start_date=dt.date(2015, 1, 1),
        end_date=dt.date(2017, 6, 30),
        seed=3,
    ).generate()
    return [VehicleSeries.from_vehicle(v) for v in fleet]


class TestHalfCycleDay:
    def test_steady_vehicle(self, steady_series):
        # T_v/2 = 100 000 reached at the end of day 4 -> semi-new from day 5.
        assert half_cycle_day(steady_series) == 5

    def test_never_reaching_half_raises(self):
        series = VehicleSeries("slow", np.full(10, 1.0), t_v=1e6)
        with pytest.raises(ValueError, match="never reaches"):
            half_cycle_day(series)


class TestFirstCycleDataset:
    def test_covers_only_first_cycle(self, steady_series):
        dataset = first_cycle_dataset(steady_series, window=0)
        first = steady_series.first_cycle()
        assert dataset.t_index.min() >= first.start
        assert dataset.t_index.max() <= first.end

    def test_incomplete_first_cycle_rejected(self):
        series = VehicleSeries("young", np.full(5, 10.0), t_v=1e6)
        with pytest.raises(ValueError, match="not completed"):
            first_cycle_dataset(series, window=0)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -1},
            {"horizon": ()},
            {"train_fraction": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ColdStartConfig(**kwargs)

    def test_default_measure_is_average_usage(self):
        assert ColdStartConfig().similarity_measure == "average_usage"


class TestSplitFleet:
    def test_seventeen_seven_style_split(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(seed=0))
        train, test = experiment.split_fleet(fleet_series)
        assert len(train) + len(test) == len(fleet_series)
        assert len(train) == round(0.7 * len(fleet_series))
        train_ids = {s.vehicle_id for s in train}
        test_ids = {s.vehicle_id for s in test}
        assert train_ids.isdisjoint(test_ids)

    def test_deterministic(self, fleet_series):
        a = ColdStartExperiment(ColdStartConfig(seed=5)).split_fleet(fleet_series)
        b = ColdStartExperiment(ColdStartConfig(seed=5)).split_fleet(fleet_series)
        assert [s.vehicle_id for s in a[0]] == [s.vehicle_id for s in b[0]]

    def test_too_few_vehicles(self, steady_series):
        experiment = ColdStartExperiment()
        with pytest.raises(ValueError, match="at least 2"):
            experiment.split_fleet([steady_series])


class TestUnifiedModel:
    def test_trains_on_merged_first_cycles(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        train, test = experiment.split_fleet(fleet_series)
        predictor = experiment.fit_unified(train, "LR")
        target = test[0]
        dataset = first_cycle_dataset(target, window=0)
        pred = predictor.predict(dataset.X)
        assert pred.shape == dataset.y.shape
        assert np.isfinite(pred).all()


class TestSimilarityModel:
    def test_donor_comes_from_training_pool(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        train, test = experiment.split_fleet(fleet_series)
        _, donor_id = experiment.fit_similarity(test[0], train, "LR")
        assert donor_id in {s.vehicle_id for s in train}

    def test_donor_minimizes_average_usage_gap(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        train, test = experiment.split_fleet(fleet_series)
        target = test[0]
        _, donor_id = experiment.fit_similarity(target, train, "LR")
        target_avg = experiment._first_half_usage(target).mean()
        gaps = {
            s.vehicle_id: abs(
                experiment._first_half_usage(s).mean() - target_avg
            )
            for s in train
        }
        assert donor_id == min(gaps, key=gaps.get)

    def test_custom_measure_respected(self, fleet_series):
        config = ColdStartConfig(window=0, similarity_measure="euclidean")
        experiment = ColdStartExperiment(config)
        train, test = experiment.split_fleet(fleet_series)
        _, donor_id = experiment.fit_similarity(test[0], train, "LR")
        assert donor_id in {s.vehicle_id for s in train}


class TestEvaluation:
    def test_semi_new_scores_second_half_only(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        train, test = experiment.split_fleet(fleet_series)
        target = test[0]
        dataset = experiment._eval_dataset(target, era="semi_new")
        assert dataset.t_index.min() >= half_cycle_day(target)

    def test_new_era_scores_first_half_only(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        train, test = experiment.split_fleet(fleet_series)
        target = test[0]
        dataset = experiment._eval_dataset(target, era="new")
        assert dataset.t_index.max() < half_cycle_day(target)

    def test_full_era_is_union(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        _, test = experiment.split_fleet(fleet_series)
        target = test[0]
        full = experiment._eval_dataset(target, era="full")
        semi = experiment._eval_dataset(target, era="semi_new")
        new = experiment._eval_dataset(target, era="new")
        assert full.n_records == semi.n_records + new.n_records

    def test_unknown_era(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0))
        with pytest.raises(ValueError, match="era"):
            experiment._eval_dataset(fleet_series[0], era="ancient")


class TestFullProtocol:
    def test_semi_new_rows(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0, seed=1))
        train, test = experiment.split_fleet(fleet_series)
        results = experiment.run_semi_new(train, test[:2], ["LR"])
        labels = {r.label for r in results}
        assert labels == {"BL", "LR_Sim", "LR_Uni"}
        # One BL + one Sim + one Uni per test vehicle.
        assert len(results) == 2 * 3

    def test_new_rows_are_uni_only(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0, seed=1))
        train, test = experiment.split_fleet(fleet_series)
        results = experiment.run_new(train, test[:2], ["LR", "RF"])
        assert {r.strategy for r in results} == {"Uni"}
        assert {r.algorithm for r in results} == {"LR", "RF"}

    def test_bl_excluded_from_model_lists(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0, seed=1))
        train, test = experiment.split_fleet(fleet_series)
        results = experiment.run_new(train, test[:1], ["BL", "LR"])
        assert all(r.algorithm != "BL" for r in results)

    def test_sim_results_carry_donor(self, fleet_series):
        experiment = ColdStartExperiment(ColdStartConfig(window=0, seed=1))
        train, test = experiment.split_fleet(fleet_series)
        results = experiment.run_semi_new(train, test[:1], ["LR"])
        sim = [r for r in results if r.strategy == "Sim"]
        assert all(r.donor_id for r in sim)


class TestAggregateByLabel:
    def test_mean_per_label(self, fleet_series):
        from repro.core.coldstart import ColdStartResult

        results = [
            ColdStartResult("v1", "LR", "Uni", e_mre=2.0, e_global=1.0, n_eval=5),
            ColdStartResult("v2", "LR", "Uni", e_mre=4.0, e_global=3.0, n_eval=5),
            ColdStartResult("v3", "LR", "Uni", e_mre=float("nan"), e_global=1.0, n_eval=0),
        ]
        out = aggregate_by_label(results, "e_mre")
        assert out == {"LR_Uni": 3.0}

    def test_invalid_metric(self):
        with pytest.raises(ValueError, match="metric"):
            aggregate_by_label([], "accuracy")
