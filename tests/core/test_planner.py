"""Unit tests for repro.core.planner."""

import datetime as dt

import numpy as np
import pytest

from repro.core.categorize import VehicleCategory
from repro.core.planner import (
    FleetMaintenancePlanner,
    MaintenanceForecast,
    ScheduledMaintenance,
)
from repro.core.predictors import BaselinePredictor
from repro.core.series import VehicleSeries
from repro.dataprep.transformation import build_relational_dataset

TODAY = dt.date(2019, 6, 1)


def forecast(vid, days, category=VehicleCategory.OLD):
    return MaintenanceForecast(
        vehicle_id=vid,
        category=category,
        days_to_maintenance=days,
        usage_left=days * 20_000.0,
    )


class TestForecastVehicle:
    def test_live_forecast_from_latest_day(self, steady_series):
        dataset = build_relational_dataset(steady_series.bundle, window=0)
        predictor = BaselinePredictor().fit(dataset, steady_series.usage)
        out = FleetMaintenancePlanner.forecast_vehicle(
            steady_series, predictor, window=0
        )
        # Day 34 is the 5th day of its cycle: L = 120 000 and Eq. 6
        # says L / AVG = 6 (one above the true D = 5; see the off-by-one
        # note in tests/core/test_old_vehicles.py).
        assert out.days_to_maintenance == pytest.approx(6.0)
        assert out.category == VehicleCategory.OLD

    def test_window_longer_than_history_rejected(self):
        series = VehicleSeries("x", np.full(3, 100.0), t_v=1e4)
        predictor = BaselinePredictor()
        with pytest.raises(ValueError, match="window"):
            FleetMaintenancePlanner.forecast_vehicle(series, predictor, window=5)

    def test_negative_forecast_rejected_by_dataclass(self):
        with pytest.raises(ValueError):
            forecast("v01", -1.0)


class TestBuildSchedule:
    def test_urgent_first(self):
        planner = FleetMaintenancePlanner(daily_capacity=5)
        schedule = planner.build_schedule(
            [forecast("late", 20.0), forecast("soon", 2.0)], TODAY
        )
        assert schedule[0].vehicle_id == "soon"

    def test_due_date_computed_from_days(self):
        planner = FleetMaintenancePlanner()
        schedule = planner.build_schedule([forecast("v01", 3.4)], TODAY)
        assert schedule[0].due_date == TODAY + dt.timedelta(days=3)
        assert schedule[0].scheduled_date == schedule[0].due_date

    def test_capacity_pushes_overflow_later(self):
        planner = FleetMaintenancePlanner(daily_capacity=1)
        schedule = planner.build_schedule(
            [forecast("a", 2.0), forecast("b", 2.0), forecast("c", 2.0)],
            TODAY,
        )
        dates = sorted(s.scheduled_date for s in schedule)
        assert len(set(dates)) == 3  # one per day
        slacks = {s.vehicle_id: s.slack_days for s in schedule}
        assert slacks["a"] == 0
        assert sorted(slacks.values()) == [0, 1, 2]

    def test_never_scheduled_before_due(self):
        planner = FleetMaintenancePlanner(daily_capacity=1)
        schedule = planner.build_schedule(
            [forecast(f"v{i}", float(i)) for i in range(6)], TODAY
        )
        for slot in schedule:
            assert slot.scheduled_date >= slot.due_date

    def test_horizon_filters_far_vehicles(self):
        planner = FleetMaintenancePlanner(horizon_days=10)
        schedule = planner.build_schedule(
            [forecast("near", 5.0), forecast("far", 50.0)], TODAY
        )
        assert [s.vehicle_id for s in schedule] == ["near"]

    def test_mapping_input_accepted(self):
        planner = FleetMaintenancePlanner()
        schedule = planner.build_schedule({"v01": forecast("v01", 1.0)}, TODAY)
        assert len(schedule) == 1

    @pytest.mark.parametrize(
        "kwargs", [{"daily_capacity": 0}, {"horizon_days": 0}]
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            FleetMaintenancePlanner(**kwargs)


class TestRender:
    def test_empty_schedule_message(self):
        assert "No maintenance" in FleetMaintenancePlanner.render([])

    def test_rendered_rows(self):
        slot = ScheduledMaintenance(
            vehicle_id="v07",
            due_date=TODAY,
            scheduled_date=TODAY + dt.timedelta(days=1),
            predicted_days_left=4.2,
        )
        text = FleetMaintenancePlanner.render([slot])
        assert "v07" in text
        assert "4.2" in text


class TestUncertaintyBands:
    def _rf_predictor(self, series):
        from repro.core.registry import make_predictor
        from repro.dataprep.transformation import build_relational_dataset

        dataset = build_relational_dataset(series.bundle, window=0)
        predictor = make_predictor("RF")
        predictor.fit(dataset)
        return predictor

    def test_forecast_carries_band(self, steady_series):
        predictor = self._rf_predictor(steady_series)
        out = FleetMaintenancePlanner.forecast_vehicle(
            steady_series, predictor, window=0, quantiles=(0.1, 0.9)
        )
        assert out.days_lower is not None
        assert out.days_upper is not None
        assert out.days_lower <= out.days_to_maintenance <= out.days_upper

    def test_band_absent_without_quantiles(self, steady_series):
        predictor = self._rf_predictor(steady_series)
        out = FleetMaintenancePlanner.forecast_vehicle(
            steady_series, predictor, window=0
        )
        assert out.days_lower is None

    def test_band_absent_for_models_without_quantiles(self, steady_series):
        from repro.core.registry import make_predictor
        from repro.dataprep.transformation import build_relational_dataset

        dataset = build_relational_dataset(steady_series.bundle, window=0)
        predictor = make_predictor("LR")
        predictor.fit(dataset)
        out = FleetMaintenancePlanner.forecast_vehicle(
            steady_series, predictor, window=0, quantiles=(0.1, 0.9)
        )
        assert out.days_lower is None

    def test_invalid_quantiles(self, steady_series):
        predictor = self._rf_predictor(steady_series)
        with pytest.raises(ValueError, match="quantiles"):
            FleetMaintenancePlanner.forecast_vehicle(
                steady_series, predictor, window=0, quantiles=(0.9, 0.1)
            )

    def test_conservative_schedule_moves_uncertain_vehicles_earlier(self):
        planner = FleetMaintenancePlanner(daily_capacity=5)
        uncertain = MaintenanceForecast(
            vehicle_id="fuzzy",
            category=VehicleCategory.OLD,
            days_to_maintenance=20.0,
            usage_left=1e6,
            days_lower=5.0,
            days_upper=35.0,
        )
        point = planner.build_schedule([uncertain], TODAY)
        conservative = planner.build_schedule(
            [uncertain], TODAY, conservative=True
        )
        assert point[0].due_date == TODAY + dt.timedelta(days=20)
        assert conservative[0].due_date == TODAY + dt.timedelta(days=5)

    def test_invalid_band_ordering_rejected(self):
        with pytest.raises(ValueError, match="days_lower"):
            MaintenanceForecast(
                vehicle_id="x",
                category=VehicleCategory.OLD,
                days_to_maintenance=10.0,
                usage_left=1.0,
                days_lower=12.0,
                days_upper=20.0,
            )
