"""Unit tests for repro.core.series (VehicleSeries)."""

import numpy as np
import pytest

from repro.core.series import VehicleSeries


class TestConstruction:
    def test_from_arrays(self, steady_series):
        assert steady_series.n_days == 35
        assert steady_series.total_usage == pytest.approx(35 * 20_000.0)

    def test_from_vehicle(self, small_fleet):
        vehicle = small_fleet.vehicles[0]
        series = VehicleSeries.from_vehicle(vehicle)
        assert series.vehicle_id == vehicle.vehicle_id
        assert series.t_v == vehicle.spec.t_v
        assert np.array_equal(series.usage, vehicle.usage)

    def test_invalid_shape(self):
        with pytest.raises(ValueError, match="1-D"):
            VehicleSeries("x", np.zeros((2, 2)), 100.0)

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="t_v"):
            VehicleSeries("x", np.zeros(3), 0.0)


class TestDerivedViews:
    def test_bundle_cached(self, steady_series):
        assert steady_series.bundle is steady_series.bundle

    def test_cycles_exposed(self, steady_series):
        assert len(steady_series.completed_cycles) == 3
        assert steady_series.first_cycle().completed

    def test_series_properties_aligned(self, steady_series):
        n = steady_series.n_days
        assert steady_series.days_since_maintenance.shape == (n,)
        assert steady_series.usage_left.shape == (n,)
        assert steady_series.days_to_maintenance.shape == (n,)


class TestTruncation:
    def test_truncated_rewinds_history(self, steady_series):
        short = steady_series.truncated(12)
        assert short.n_days == 12
        assert len(short.completed_cycles) == 1

    def test_truncated_is_independent_copy(self, steady_series):
        short = steady_series.truncated(5)
        short.usage[0] = 0.0
        assert steady_series.usage[0] == 20_000.0

    def test_bounds(self, steady_series):
        with pytest.raises(ValueError):
            steady_series.truncated(99)
        with pytest.raises(ValueError):
            steady_series.truncated(-1)

    def test_empty_series_has_no_first_cycle(self):
        empty = VehicleSeries("x", np.zeros(0), 100.0)
        with pytest.raises(ValueError, match="no observed days"):
            empty.first_cycle()


class TestReanchoring:
    def test_reanchored_shifts_cycle_boundaries(self, steady_series):
        base = steady_series.bundle
        shifted = steady_series.reanchored(3)
        assert shifted.cycles[0].start == 3
        assert base.cycles[0].start == 0

    def test_repr_compact(self, steady_series):
        text = repr(steady_series)
        assert "steady" in text
        assert "n_days=35" in text
        assert "[" not in text  # raw usage array elided
