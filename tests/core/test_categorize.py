"""Unit tests for repro.core.categorize (Section 2 vehicle classes)."""

import numpy as np
import pytest

from repro.core.categorize import (
    VehicleCategory,
    categorize,
    categorize_usage,
)
from repro.core.series import VehicleSeries


class TestCategorizeUsage:
    def test_new_below_half_budget(self):
        assert categorize_usage(np.full(3, 10.0), t_v=100.0) == VehicleCategory.NEW

    def test_semi_new_at_half_budget(self):
        assert categorize_usage([50.0], t_v=100.0) == VehicleCategory.SEMI_NEW

    def test_semi_new_below_full_budget(self):
        assert categorize_usage([99.0], t_v=100.0) == VehicleCategory.SEMI_NEW

    def test_old_at_full_budget(self):
        assert categorize_usage([100.0], t_v=100.0) == VehicleCategory.OLD

    def test_empty_history_is_new(self):
        assert categorize_usage(np.zeros(0), t_v=100.0) == VehicleCategory.NEW

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="t_v"):
            categorize_usage([1.0], t_v=0.0)

    def test_nan_usage_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            categorize_usage([np.nan], t_v=10.0)


class TestCategorizeSeries:
    def test_full_history(self, steady_series):
        assert categorize(steady_series) == VehicleCategory.OLD

    def test_as_of_day_rewinds(self, steady_series):
        # T_v = 200 000 at 20 000/day: new until day 5, old from day 10.
        assert categorize(steady_series, as_of_day=3) == VehicleCategory.NEW
        assert categorize(steady_series, as_of_day=5) == VehicleCategory.SEMI_NEW
        assert categorize(steady_series, as_of_day=10) == VehicleCategory.OLD

    def test_as_of_day_zero_is_new(self, steady_series):
        assert categorize(steady_series, as_of_day=0) == VehicleCategory.NEW

    def test_as_of_day_bounds(self, steady_series):
        with pytest.raises(ValueError):
            categorize(steady_series, as_of_day=99)

    def test_category_progression_is_monotone(self, paper_fleet):
        """A vehicle never regresses from old back to semi-new or new."""
        order = {
            VehicleCategory.NEW: 0,
            VehicleCategory.SEMI_NEW: 1,
            VehicleCategory.OLD: 2,
        }
        vehicle = paper_fleet.vehicles[0]
        series = VehicleSeries.from_vehicle(vehicle)
        checkpoints = range(0, series.n_days, 50)
        ranks = [order[categorize(series, as_of_day=d)] for d in checkpoints]
        assert ranks == sorted(ranks)

    def test_paper_fleet_all_old_by_end(self, paper_fleet):
        """After 4.75 years every calibrated vehicle has completed cycles."""
        for vehicle in paper_fleet:
            series = VehicleSeries.from_vehicle(vehicle)
            assert categorize(series) == VehicleCategory.OLD
