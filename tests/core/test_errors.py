"""Unit tests for repro.core.errors (Section 2.1)."""

import numpy as np
import pytest

from repro.core.errors import (
    DEFAULT_HORIZON,
    daily_errors,
    global_error,
    mean_residual_error,
    residual_error_by_day,
)


class TestDailyErrors:
    def test_signed_difference(self):
        out = daily_errors([10.0, 5.0], [8.0, 7.0])
        assert np.array_equal(out, [2.0, -2.0])

    def test_nan_ground_truth_propagates(self):
        out = daily_errors([np.nan, 3.0], [1.0, 3.0])
        assert np.isnan(out[0])
        assert out[1] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            daily_errors([1.0], [1.0, 2.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            daily_errors(np.zeros((2, 2)), np.zeros((2, 2)))


class TestGlobalError:
    def test_absolute_mean(self):
        assert global_error([10.0, 10.0], [8.0, 14.0]) == 3.0

    def test_signed_mean_detects_bias(self):
        assert global_error([10.0, 10.0], [8.0, 14.0], absolute=False) == -1.0

    def test_nan_days_skipped(self):
        assert global_error([np.nan, 4.0], [0.0, 6.0]) == 2.0

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="No labeled samples"):
            global_error([np.nan], [1.0])


class TestMeanResidualError:
    def test_default_horizon_is_last_29_days(self):
        assert DEFAULT_HORIZON == tuple(range(1, 30))

    def test_only_horizon_days_counted(self):
        d_true = np.array([100.0, 29.0, 5.0, 1.0])
        d_pred = np.array([0.0, 30.0, 6.0, 2.0])
        # Day with target 100 is outside {1..29}; others err by 1 each.
        assert mean_residual_error(d_true, d_pred) == pytest.approx(1.0)

    def test_single_day_horizon(self):
        d_true = np.array([5.0, 4.0, 5.0])
        d_pred = np.array([7.0, 0.0, 5.0])
        assert mean_residual_error(d_true, d_pred, horizon=[5]) == 1.0

    def test_zero_not_in_default_horizon(self):
        d_true = np.array([0.0])
        d_pred = np.array([10.0])
        assert np.isnan(mean_residual_error(d_true, d_pred))

    def test_no_matching_days_gives_nan(self):
        assert np.isnan(
            mean_residual_error([500.0], [400.0], horizon=[1, 2, 3])
        )

    def test_signed_variant(self):
        d_true = np.array([10.0, 10.0])
        d_pred = np.array([12.0, 12.0])
        assert mean_residual_error(d_true, d_pred, absolute=False) == -2.0

    def test_empty_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            mean_residual_error([1.0], [1.0], horizon=[])

    def test_nan_predictions_excluded(self):
        d_true = np.array([5.0, 5.0])
        d_pred = np.array([np.nan, 7.0])
        assert mean_residual_error(d_true, d_pred, horizon=[5]) == 2.0


class TestResidualErrorByDay:
    def test_one_entry_per_day(self):
        d_true = np.array([1.0, 2.0, 3.0])
        d_pred = np.array([2.0, 2.0, 0.0])
        curve = residual_error_by_day(d_true, d_pred, days=[1, 2, 3])
        assert curve == {1: 1.0, 2: 0.0, 3: 3.0}

    def test_missing_days_are_nan(self):
        curve = residual_error_by_day([5.0], [5.0], days=[5, 6])
        assert curve[5] == 0.0
        assert np.isnan(curve[6])

    def test_error_grows_away_from_deadline_for_rate_bias(self):
        """A 20%-biased rate predictor errs proportionally to D."""
        d_true = np.arange(1.0, 30.0)
        d_pred = d_true * 1.2
        curve = residual_error_by_day(d_true, d_pred)
        assert curve[29] > curve[1]
        assert curve[29] == pytest.approx(29 * 0.2)
