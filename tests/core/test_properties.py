"""Property-based tests (hypothesis) for the Section-2 cycle arithmetic.

These pin the invariants every other module relies on, over arbitrary
non-negative usage series and budgets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.categorize import VehicleCategory, categorize_usage
from repro.core.cycles import (
    IncrementalSeriesState,
    derive_series,
    segment_cycles,
)
from repro.dataprep.transformation import build_relational_dataset

usage_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(1, 120),
    elements=st.floats(min_value=0.0, max_value=86_400.0),
)
budgets = st.floats(min_value=1_000.0, max_value=500_000.0)


class TestSegmentationProperties:
    @given(usage_arrays, budgets)
    def test_cycles_partition_the_series(self, usage, t_v):
        cycles = segment_cycles(usage, t_v)
        if not cycles:
            return
        assert cycles[0].start == 0
        assert cycles[-1].end == usage.size - 1
        for a, b in zip(cycles, cycles[1:]):
            assert b.start == a.end + 1

    @given(usage_arrays, budgets)
    def test_completed_cycles_meet_budget(self, usage, t_v):
        for cycle in segment_cycles(usage, t_v):
            if cycle.completed:
                assert cycle.total_usage >= t_v
                # Budget not already met the day before the last day.
                before_last = usage[cycle.start : cycle.end].sum()
                assert before_last < t_v
            else:
                assert cycle.total_usage < t_v

    @given(usage_arrays, budgets, st.integers(0, 30))
    def test_shifted_start_never_sees_earlier_days(self, usage, t_v, start):
        start = min(start, usage.size)
        cycles = segment_cycles(usage, t_v, start=start)
        assert all(c.start >= start for c in cycles)


class TestDerivedSeriesProperties:
    @given(usage_arrays, budgets)
    def test_d_counts_down_and_l_is_budget_consistent(self, usage, t_v):
        bundle = derive_series(usage, t_v)
        d = bundle.days_to_maintenance
        ell = bundle.usage_left
        c = bundle.days_since_maintenance
        for cycle in bundle.cycles:
            days = np.arange(cycle.start, cycle.end + 1)
            # C counts up from 0 by one.
            assert np.array_equal(c[days], days - cycle.start)
            # L starts at the full budget and never increases.
            assert ell[cycle.start] == t_v
            assert np.all(np.diff(ell[days]) <= 1e-9)
            assert np.all(ell[days] > 0)
            if cycle.completed:
                assert np.array_equal(d[days], cycle.end - days)
            else:
                assert np.isnan(d[days]).all()

    @given(usage_arrays, budgets)
    def test_l_equals_equation_one(self, usage, t_v):
        bundle = derive_series(usage, t_v)
        c = bundle.days_since_maintenance
        ell = bundle.usage_left
        for t in range(usage.size):
            if not np.isfinite(ell[t]):
                continue
            window_start = t - int(c[t])
            expected = t_v - usage[window_start:t].sum()
            assert abs(ell[t] - expected) < 1e-6


class TestCategorizationProperties:
    @given(usage_arrays, budgets)
    def test_category_matches_total_usage(self, usage, t_v):
        total = usage.sum()
        category = categorize_usage(usage, t_v)
        if total >= t_v:
            assert category is VehicleCategory.OLD
        elif total >= t_v / 2:
            assert category is VehicleCategory.SEMI_NEW
        else:
            assert category is VehicleCategory.NEW

    @given(usage_arrays, budgets)
    def test_category_monotone_in_history(self, usage, t_v):
        order = {
            VehicleCategory.NEW: 0,
            VehicleCategory.SEMI_NEW: 1,
            VehicleCategory.OLD: 2,
        }
        previous = -1
        for cut in range(usage.size + 1):
            rank = order[categorize_usage(usage[:cut], t_v)]
            assert rank >= previous
            previous = rank


class TestIncrementalSeriesProperties:
    """The incremental path must be *bit-identical* to full re-derivation.

    Both paths accumulate usage in the same sequential order, so under
    IEEE-754 round-to-nearest the floats agree exactly — these asserts
    use strict equality on purpose, not tolerances.
    """

    @given(usage_arrays, budgets, st.integers(0, 40))
    def test_appending_k_days_matches_full_rederivation(self, usage, t_v, k):
        k = min(k, usage.size)
        state = IncrementalSeriesState.from_usage(usage[: usage.size - k], t_v)
        for value in usage[usage.size - k :]:
            state.append(value)
        incremental = state.bundle()
        full = derive_series(usage, t_v)
        assert incremental.cycles == full.cycles
        assert np.array_equal(incremental.usage, full.usage)
        assert np.array_equal(
            incremental.days_since_maintenance,
            full.days_since_maintenance,
            equal_nan=True,
        )
        assert np.array_equal(
            incremental.usage_left, full.usage_left, equal_nan=True
        )
        assert np.array_equal(
            incremental.days_to_maintenance,
            full.days_to_maintenance,
            equal_nan=True,
        )

    @given(usage_arrays, budgets)
    def test_bundle_snapshots_are_stable(self, usage, t_v):
        """Later appends must never rewrite a previously returned bundle."""
        state = IncrementalSeriesState(t_v)
        state.append(usage[0])
        snapshot = state.bundle()
        frozen_d = snapshot.days_to_maintenance.copy()
        for value in usage[1:]:
            state.append(value)
        assert np.array_equal(
            snapshot.days_to_maintenance, frozen_d, equal_nan=True
        )

    @given(usage_arrays, budgets, st.integers(0, 30))
    def test_time_shift_invariance_of_cycle_boundaries(self, usage, t_v, s):
        """Dropping a prefix only relabels days; cycles are unchanged.

        This is the augmentation invariance the data-prep layer relies
        on: ``segment_cycles(usage, t_v, start=s)`` must equal
        ``segment_cycles(usage[s:], t_v)`` with every boundary shifted
        by ``s``, including exact per-cycle total usage.
        """
        s = min(s, usage.size)
        shifted = segment_cycles(usage, t_v, start=s)
        rebased = segment_cycles(usage[s:], t_v)
        assert len(shifted) == len(rebased)
        for a, b in zip(shifted, rebased):
            assert a.start == b.start + s
            assert a.end == b.end + s
            assert a.completed == b.completed
            assert a.total_usage == b.total_usage

    @given(usage_arrays, budgets)
    def test_l_monotone_non_increasing_within_cycle(self, usage, t_v):
        """L_v never increases inside a cycle — exactly, not approximately.

        L[t] = t_v - cumsum(usage), and subtracting a larger-or-equal
        accumulated total can never round *up* past the previous value,
        so strict ``diff <= 0`` holds bit-for-bit.
        """
        bundle = derive_series(usage, t_v)
        ell = bundle.usage_left
        for cycle in bundle.cycles:
            within = ell[cycle.start : cycle.end + 1]
            assert np.all(np.diff(within) <= 0.0)


class TestRelationalDatasetProperties:
    @settings(max_examples=40, deadline=None)
    @given(usage_arrays, budgets, st.integers(0, 5))
    def test_records_consistent_with_bundle(self, usage, t_v, window):
        bundle = derive_series(usage, t_v)
        dataset = build_relational_dataset(bundle, window)
        for row in range(dataset.n_records):
            t = int(dataset.t_index[row])
            assert t >= window
            assert dataset.X[row, 0] == bundle.usage_left[t]
            assert dataset.y[row] == bundle.days_to_maintenance[t]
            for lag in range(1, window + 1):
                assert dataset.X[row, lag] == usage[t - lag]

    @settings(max_examples=40, deadline=None)
    @given(usage_arrays, budgets)
    def test_horizon_restriction_is_subset(self, usage, t_v):
        bundle = derive_series(usage, t_v)
        dataset = build_relational_dataset(bundle, 0)
        restricted = dataset.restrict_to_horizon(range(1, 30))
        assert restricted.n_records <= dataset.n_records
        assert set(restricted.t_index) <= set(dataset.t_index)
