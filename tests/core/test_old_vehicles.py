"""Unit tests for repro.core.old_vehicles (Section 4.3)."""

import numpy as np
import pytest

from repro.core.old_vehicles import (
    FleetResult,
    OldVehicleConfig,
    OldVehicleExperiment,
    select_best_algorithm,
)
from repro.core.series import VehicleSeries


@pytest.fixture(scope="module")
def fleet_series(small_fleet):
    return [VehicleSeries.from_vehicle(v) for v in small_fleet]


@pytest.fixture(scope="module")
def small_fleet():
    import datetime as dt

    from repro.fleet.generator import FleetGenerator

    return FleetGenerator(
        n_vehicles=6,
        start_date=dt.date(2015, 1, 1),
        end_date=dt.date(2017, 3, 31),
        seed=7,
    ).generate()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -1},
            {"train_fraction": 0.0},
            {"train_fraction": 1.0},
            {"horizon": ()},
            {"n_shifts": -2},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            OldVehicleConfig(**kwargs)

    def test_defaults_match_paper(self):
        config = OldVehicleConfig()
        assert config.train_fraction == 0.7
        assert config.horizon == tuple(range(1, 30))
        assert config.cv_splits == 5


class TestRunVehicle:
    def test_result_fields(self, fleet_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        result = experiment.run_vehicle(fleet_series[0], "LR")
        assert result.vehicle_id == fleet_series[0].vehicle_id
        assert result.algorithm == "LR"
        assert result.n_train > 0 and result.n_test > 0
        assert result.d_true.shape == result.d_pred.shape
        assert result.fit_seconds >= 0.0
        assert np.isfinite(result.e_global)

    def test_temporal_split_no_overlap(self, fleet_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        series = fleet_series[0]
        result = experiment.run_vehicle(series, "LR")
        cut = int(round(0.7 * series.n_days))
        assert result.t_index.min() >= cut

    def test_restriction_trains_on_horizon_only(self, fleet_series):
        config = OldVehicleConfig(window=0, restrict_to_horizon=True)
        experiment = OldVehicleExperiment(config)
        series = fleet_series[0]
        cut = int(round(0.7 * series.n_days))
        dataset = experiment._train_dataset(series, cut)
        assert set(np.unique(dataset.y.astype(int))) <= set(range(1, 30))

    def test_augmentation_grows_training_set(self, fleet_series):
        series = fleet_series[0]
        cut = int(round(0.7 * series.n_days))
        plain = OldVehicleExperiment(OldVehicleConfig(window=0))
        augmented = OldVehicleExperiment(
            OldVehicleConfig(window=0, n_shifts=4, seed=1)
        )
        assert (
            augmented._train_dataset(series, cut).n_records
            > plain._train_dataset(series, cut).n_records
        )

    def test_bl_prediction_is_l_over_avg(self, steady_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        result = experiment.run_vehicle(steady_series, "BL")
        # Constant usage: Eq. 6 (D = L / AVG) counts the remaining *work
        # days including today*, while D counts days *until* the
        # maintenance day — a systematic off-by-one the paper's formula
        # carries.  For a perfectly steady vehicle the error is exactly 1.
        assert result.e_global == pytest.approx(1.0, abs=1e-9)

    def test_ml_beats_noise_on_steady_vehicle(self, steady_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        result = experiment.run_vehicle(steady_series, "LR")
        assert result.e_global < 1.0


class TestRunFleet:
    def test_one_result_per_vehicle(self, fleet_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        fleet_result = experiment.run_fleet(fleet_series, "LR")
        assert len(fleet_result.results) == len(fleet_series)

    def test_emre_is_mean_of_finite_vehicle_values(self, fleet_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        fleet_result = experiment.run_fleet(fleet_series, "LR")
        values = [r.e_mre for r in fleet_result.results]
        finite = [v for v in values if np.isfinite(v)]
        assert fleet_result.e_mre == pytest.approx(np.mean(finite))

    def test_empty_fleet_rejected(self):
        experiment = OldVehicleExperiment()
        with pytest.raises(ValueError):
            experiment.run_fleet([], "LR")

    def test_run_matrix_keys(self, fleet_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        out = experiment.run_matrix(fleet_series[:2], ["BL", "LR"])
        assert list(out) == ["BL", "LR"]

    def test_error_by_day_keys(self, fleet_series):
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        fleet_result = experiment.run_fleet(fleet_series, "LR")
        curve = fleet_result.error_by_day([1, 5, 29])
        assert set(curve) == {1, 5, 29}


class TestSelectBestAlgorithm:
    def test_returns_candidate_with_lowest_emre(self, fleet_series):
        best, results = select_best_algorithm(
            fleet_series[0], ["BL", "LR"], OldVehicleConfig(window=0)
        )
        assert best in results
        finite = {
            k: v.e_mre for k, v in results.items() if np.isfinite(v.e_mre)
        }
        if finite:
            assert best == min(finite, key=finite.get)

    def test_empty_algorithm_list_rejected(self, fleet_series):
        with pytest.raises(ValueError):
            select_best_algorithm(fleet_series[0], [])
