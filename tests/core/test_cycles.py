"""Unit tests for repro.core.cycles — the Section-2 arithmetic."""

import numpy as np
import pytest

from repro.core.cycles import Cycle, derive_series, segment_cycles


class TestSegmentCycles:
    def test_steady_usage_exact_cycles(self):
        usage = np.full(35, 20_000.0)
        cycles = segment_cycles(usage, 200_000.0)
        completed = [c for c in cycles if c.completed]
        assert len(completed) == 3
        for order, cycle in enumerate(completed):
            assert cycle.n_days == 10
            assert cycle.start == order * 10
            assert cycle.total_usage == pytest.approx(200_000.0)

    def test_trailing_incomplete_cycle(self):
        usage = np.full(35, 20_000.0)
        cycles = segment_cycles(usage, 200_000.0)
        assert not cycles[-1].completed
        assert cycles[-1].start == 30
        assert cycles[-1].end == 34
        assert cycles[-1].total_usage == pytest.approx(100_000.0)

    def test_budget_exactly_met_completes_that_day(self):
        usage = np.array([50.0, 50.0])
        cycles = segment_cycles(usage, 100.0)
        assert cycles[0].completed
        assert cycles[0].end == 1
        assert len(cycles) == 1  # no trailing empty cycle

    def test_one_day_exceeding_budget(self):
        usage = np.array([500.0, 10.0])
        cycles = segment_cycles(usage, 100.0)
        assert cycles[0] == Cycle(start=0, end=0, completed=True, total_usage=500.0)

    def test_never_reaching_budget(self):
        cycles = segment_cycles(np.full(10, 1.0), 1e6)
        assert len(cycles) == 1
        assert not cycles[0].completed

    def test_zero_usage_days_stretch_cycle(self):
        usage = np.array([50.0, 0.0, 0.0, 50.0])
        cycles = segment_cycles(usage, 100.0)
        assert cycles[0].completed
        assert cycles[0].n_days == 4

    def test_shifted_start(self):
        usage = np.full(30, 20_000.0)
        cycles = segment_cycles(usage, 200_000.0, start=5)
        assert cycles[0].start == 5
        assert cycles[0].end == 14

    def test_start_at_end_gives_nothing(self):
        assert segment_cycles(np.ones(5), 10.0, start=5) == []

    def test_empty_series(self):
        assert segment_cycles(np.zeros(0), 10.0) == []

    @pytest.mark.parametrize(
        "usage, t_v, start, match",
        [
            (np.array([[1.0]]), 10.0, 0, "1-D"),
            (np.array([np.nan]), 10.0, 0, "NaN"),
            (np.array([-1.0]), 10.0, 0, "non-negative"),
            (np.array([1.0]), 0.0, 0, "t_v"),
            (np.array([1.0]), 10.0, 5, "start"),
        ],
    )
    def test_invalid_inputs(self, usage, t_v, start, match):
        with pytest.raises(ValueError, match=match):
            segment_cycles(usage, t_v, start=start)


class TestDeriveSeries:
    def test_days_since_maintenance(self):
        usage = np.full(25, 20_000.0)
        bundle = derive_series(usage, 200_000.0)
        c = bundle.days_since_maintenance
        assert c[0] == 0
        assert c[9] == 9
        assert c[10] == 0  # new cycle starts
        assert c[19] == 9

    def test_target_counts_down_to_zero(self):
        usage = np.full(25, 20_000.0)
        bundle = derive_series(usage, 200_000.0)
        d = bundle.days_to_maintenance
        assert d[0] == 9
        assert d[9] == 0
        assert d[10] == 9

    def test_usage_left_matches_equation_one(self):
        usage = np.full(25, 20_000.0)
        bundle = derive_series(usage, 200_000.0)
        ell = bundle.usage_left
        assert ell[0] == 200_000.0  # nothing used yet
        assert ell[1] == 180_000.0
        assert ell[9] == 20_000.0
        assert ell[10] == 200_000.0  # reset at the new cycle

    def test_incomplete_cycle_has_nan_target_but_valid_l(self):
        usage = np.full(15, 20_000.0)
        bundle = derive_series(usage, 200_000.0)
        assert np.isnan(bundle.days_to_maintenance[12])
        assert bundle.usage_left[12] == pytest.approx(200_000.0 - 2 * 20_000.0)
        assert bundle.days_since_maintenance[12] == 2

    def test_days_before_start_are_nan_everywhere(self):
        usage = np.full(25, 20_000.0)
        bundle = derive_series(usage, 200_000.0, start=5)
        for series in (
            bundle.days_to_maintenance,
            bundle.usage_left,
            bundle.days_since_maintenance,
        ):
            assert np.isnan(series[:5]).all()
            assert np.isfinite(series[5]).all()

    def test_labeled_mask(self):
        usage = np.full(15, 20_000.0)
        bundle = derive_series(usage, 200_000.0)
        mask = bundle.labeled_mask
        assert mask[:10].all()
        assert not mask[10:].any()

    def test_d_decreases_by_one_within_cycle(self, paper_fleet):
        vehicle = paper_fleet.vehicles[0]
        bundle = derive_series(vehicle.usage, vehicle.spec.t_v)
        d = bundle.days_to_maintenance
        for cycle in bundle.completed_cycles:
            segment = d[cycle.start : cycle.end + 1]
            assert np.all(np.diff(segment) == -1)
            assert segment[-1] == 0

    def test_l_monotone_nonincreasing_within_cycle(self, paper_fleet):
        vehicle = paper_fleet.vehicles[0]
        bundle = derive_series(vehicle.usage, vehicle.spec.t_v)
        for cycle in bundle.completed_cycles:
            ell = bundle.usage_left[cycle.start : cycle.end + 1]
            assert np.all(np.diff(ell) <= 1e-9)
            assert ell[0] == pytest.approx(vehicle.spec.t_v)
            assert ell[-1] > 0  # budget not exhausted before the last day
