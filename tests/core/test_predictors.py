"""Unit tests for repro.core.predictors."""

import numpy as np
import pytest

from repro.core.predictors import BaselinePredictor, RegressionPredictor
from repro.dataprep.transformation import build_relational_dataset
from repro.core.cycles import derive_series
from repro.learn.linear import LinearRegression
from repro.learn.tree import DecisionTreeRegressor


@pytest.fixture
def steady_dataset():
    usage = np.full(35, 20_000.0)
    bundle = derive_series(usage, 200_000.0)
    return build_relational_dataset(bundle, window=0), usage


class TestBaselinePredictor:
    def test_equation_five_and_six(self, steady_dataset):
        dataset, usage = steady_dataset
        predictor = BaselinePredictor().fit(dataset, usage)
        assert predictor.average_ == pytest.approx(20_000.0)
        # D_BL = L / AVG: with L = 200 000 the answer is 10 days.
        pred = predictor.predict(np.array([[200_000.0], [100_000.0]]))
        assert pred == pytest.approx([10.0, 5.0])

    def test_idle_days_lower_the_average(self, steady_dataset):
        dataset, usage = steady_dataset
        with_idle = usage.copy()
        with_idle[::2] = 0.0  # half the days idle
        predictor = BaselinePredictor().fit(dataset, with_idle)
        # AVG halves, so the predicted days double.
        assert predictor.predict(np.array([[200_000.0]]))[0] > 15.0

    def test_negative_l_clamped(self, steady_dataset):
        dataset, usage = steady_dataset
        predictor = BaselinePredictor().fit(dataset, usage)
        assert predictor.predict(np.array([[-100.0]]))[0] == 0.0

    def test_zero_usage_vehicle_floored(self, steady_dataset):
        dataset, _ = steady_dataset
        predictor = BaselinePredictor(min_average=1.0).fit(
            dataset, np.zeros(10)
        )
        out = predictor.predict(np.array([[1000.0]]))
        assert np.isfinite(out).all()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            BaselinePredictor().predict(np.zeros((1, 1)))

    def test_fit_requires_usage(self, steady_dataset):
        dataset, _ = steady_dataset
        with pytest.raises(ValueError, match="non-empty"):
            BaselinePredictor().fit(dataset, np.zeros(0))

    def test_nan_usage_rejected(self, steady_dataset):
        dataset, _ = steady_dataset
        with pytest.raises(ValueError, match="NaN"):
            BaselinePredictor().fit(dataset, np.array([np.nan]))

    def test_invalid_min_average(self):
        with pytest.raises(ValueError):
            BaselinePredictor(min_average=0.0)

    def test_is_baseline_flag(self):
        assert BaselinePredictor.is_baseline
        assert BaselinePredictor.name == "BL"


class TestRegressionPredictor:
    def test_fit_predict(self, steady_dataset):
        dataset, _ = steady_dataset
        predictor = RegressionPredictor("LR", LinearRegression())
        predictor.fit(dataset)
        pred = predictor.predict(dataset.X)
        assert np.abs(pred - dataset.y).mean() < 1.0

    def test_clip_negative_default(self, steady_dataset):
        dataset, _ = steady_dataset
        predictor = RegressionPredictor("LR", LinearRegression()).fit(dataset)
        out = predictor.predict(np.array([[-1e7]]))
        assert out[0] == 0.0

    def test_clip_can_be_disabled(self, steady_dataset):
        dataset, _ = steady_dataset
        predictor = RegressionPredictor(
            "LR", LinearRegression(), clip_negative=False
        ).fit(dataset)
        out = predictor.predict(np.array([[-1e7]]))
        assert out[0] < 0.0

    def test_grid_search_applied(self, steady_dataset):
        dataset, _ = steady_dataset
        predictor = RegressionPredictor(
            "DT",
            DecisionTreeRegressor(random_state=0),
            param_grid={"max_depth": [1, 6]},
            cv_splits=3,
        ).fit(dataset)
        assert predictor.best_params_ == {"max_depth": 6}

    def test_template_estimator_not_mutated(self, steady_dataset):
        dataset, _ = steady_dataset
        template = LinearRegression()
        RegressionPredictor("LR", template).fit(dataset)
        assert not hasattr(template, "coef_")

    def test_empty_dataset_rejected(self, steady_dataset):
        dataset, _ = steady_dataset
        empty = type(dataset)(
            X=np.zeros((0, 1)),
            y=np.zeros(0),
            t_index=np.zeros(0, dtype=np.intp),
            window=0,
        )
        with pytest.raises(ValueError, match="empty"):
            RegressionPredictor("LR", LinearRegression()).fit(empty)

    def test_predict_before_fit(self):
        predictor = RegressionPredictor("LR", LinearRegression())
        with pytest.raises(RuntimeError, match="fit"):
            predictor.predict(np.zeros((1, 1)))

    def test_usage_argument_ignored(self, steady_dataset):
        dataset, usage = steady_dataset
        a = RegressionPredictor("LR", LinearRegression()).fit(dataset, usage)
        b = RegressionPredictor("LR", LinearRegression()).fit(dataset, None)
        assert np.allclose(a.predict(dataset.X), b.predict(dataset.X))
