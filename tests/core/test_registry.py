"""Unit tests for repro.core.registry."""

import numpy as np
import pytest

from repro.core.predictors import BaselinePredictor, RegressionPredictor
from repro.core.registry import (
    ALGORITHMS,
    PAPER_ALGORITHM_ORDER,
    AlgorithmSpec,
    get_algorithm,
    make_predictor,
    register_algorithm,
)
from repro.learn.linear import Ridge


class TestRegistryContents:
    def test_paper_algorithms_present(self):
        assert set(PAPER_ALGORITHM_ORDER) <= set(ALGORITHMS)
        assert PAPER_ALGORITHM_ORDER == ("BL", "LR", "LSVR", "RF", "XGB")

    def test_bl_is_baseline(self):
        assert get_algorithm("BL").is_baseline

    def test_paper_grids_match_section5(self):
        rf = get_algorithm("RF")
        assert min(rf.paper_grid["max_depth"]) == 3
        assert max(rf.paper_grid["max_depth"]) == 50
        assert min(rf.paper_grid["n_estimators"]) == 10
        assert max(rf.paper_grid["n_estimators"]) == 1000
        svr = get_algorithm("LSVR")
        assert min(svr.paper_grid["svr__epsilon"]) == 0.5
        assert max(svr.paper_grid["svr__epsilon"]) == 2.5
        assert min(svr.paper_grid["svr__C"]) == 0.01
        assert max(svr.paper_grid["svr__C"]) == 100.0

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="Unknown algorithm"):
            get_algorithm("NN")


class TestMakePredictor:
    def test_bl_gives_baseline_predictor(self):
        assert isinstance(make_predictor("BL"), BaselinePredictor)

    @pytest.mark.parametrize("key", ["LR", "LSVR", "RF", "XGB"])
    def test_regressors_wrapped(self, key):
        predictor = make_predictor(key)
        assert isinstance(predictor, RegressionPredictor)
        assert predictor.name == key
        assert predictor.param_grid is None

    def test_fast_grid_attached(self):
        predictor = make_predictor("RF", grid="fast")
        assert predictor.param_grid == get_algorithm("RF").fast_grid

    def test_paper_grid_attached(self):
        predictor = make_predictor("XGB", grid="paper")
        assert predictor.param_grid == get_algorithm("XGB").paper_grid

    def test_invalid_grid_name(self):
        with pytest.raises(ValueError, match="grid"):
            make_predictor("RF", grid="huge")

    def test_fresh_instance_each_call(self):
        assert make_predictor("RF") is not make_predictor("RF")


class TestRegisterAlgorithm:
    def _spec(self, key="RIDGE"):
        return AlgorithmSpec(
            key=key,
            display_name="Ridge regression",
            factory=Ridge,
            default_params={"alpha": 0.5},
            fast_grid={"alpha": [0.1, 1.0]},
        )

    def test_register_and_use(self):
        register_algorithm(self._spec())
        try:
            predictor = make_predictor("RIDGE")
            assert predictor.name == "RIDGE"
            assert isinstance(predictor.estimator, Ridge)
            assert predictor.estimator.alpha == 0.5
        finally:
            del ALGORITHMS["RIDGE"]

    def test_duplicate_rejected_without_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(self._spec(key="RF"))

    def test_overwrite_allowed(self):
        original = ALGORITHMS["RF"]
        try:
            register_algorithm(self._spec(key="RF"), overwrite=True)
            assert ALGORITHMS["RF"].display_name == "Ridge regression"
        finally:
            ALGORITHMS["RF"] = original

    def test_grid_resolution(self):
        spec = self._spec()
        assert spec.grid(None) is None
        assert spec.grid("fast") == {"alpha": [0.1, 1.0]}
        assert spec.grid("paper") is None  # empty paper grid -> None
        with pytest.raises(ValueError):
            spec.grid("gigantic")


class TestRegistryPredictorsFit:
    """Every registry algorithm must fit/predict on a tiny dataset."""

    @pytest.mark.parametrize("key", PAPER_ALGORITHM_ORDER)
    def test_end_to_end(self, key):
        from repro.core.cycles import derive_series
        from repro.dataprep.transformation import build_relational_dataset

        usage = np.full(35, 20_000.0)
        dataset = build_relational_dataset(
            derive_series(usage, 200_000.0), window=0
        )
        predictor = make_predictor(key)
        predictor.fit(dataset, usage=usage)
        pred = predictor.predict(dataset.X)
        assert pred.shape == dataset.y.shape
        assert np.abs(pred - dataset.y).mean() < 5.0
