"""Unit tests for repro.context.features."""

import numpy as np
import pytest

from repro.context.features import ContextFeatureBuilder
from repro.context.weather import WeatherSimulator
from repro.core.cycles import derive_series
from repro.dataprep.transformation import build_relational_dataset


@pytest.fixture
def dataset():
    usage = np.full(40, 20_000.0)
    return build_relational_dataset(derive_series(usage, 200_000.0), window=2)


@pytest.fixture
def weather():
    return WeatherSimulator().generate(40, rng=0)


class TestContextFeatureBuilder:
    def test_appends_expected_columns(self, dataset, weather):
        builder = ContextFeatureBuilder(lookback=7, forecast_horizon=7)
        out = builder.augment(dataset, weather)
        assert out.X.shape == (dataset.n_records, dataset.X.shape[1] + 6)
        assert out.feature_names[: dataset.X.shape[1]] == dataset.feature_names
        assert "temp_mean_back7" in out.feature_names
        assert "rain_days_fwd7" in out.feature_names

    def test_backward_only_mode(self, dataset, weather):
        builder = ContextFeatureBuilder(lookback=5, forecast_horizon=0)
        out = builder.augment(dataset, weather)
        assert out.X.shape[1] == dataset.X.shape[1] + 3
        assert not any("fwd" in name for name in out.feature_names)

    def test_backward_features_match_manual(self, dataset, weather):
        builder = ContextFeatureBuilder(lookback=3, forecast_horizon=0)
        out = builder.augment(dataset, weather)
        row = 5
        day = int(out.t_index[row])
        expected_temp = weather.temperature[day - 3 : day].mean()
        temp_col = out.feature_names.index("temp_mean_back3")
        assert out.X[row, temp_col] == pytest.approx(expected_temp)

    def test_forecast_noise_perturbs_forward_features(self, dataset, weather):
        noisy = ContextFeatureBuilder(
            forecast_horizon=7, forecast_noise_sd=2.0, seed=1
        ).augment(dataset, weather)
        oracle = ContextFeatureBuilder(
            forecast_horizon=7, forecast_noise_sd=0.0
        ).augment(dataset, weather)
        fwd_col = noisy.feature_names.index("temp_mean_fwd7")
        assert not np.allclose(noisy.X[:, fwd_col], oracle.X[:, fwd_col])

    def test_labels_and_index_preserved(self, dataset, weather):
        out = ContextFeatureBuilder().augment(dataset, weather)
        assert np.array_equal(out.y, dataset.y)
        assert np.array_equal(out.t_index, dataset.t_index)

    def test_weather_too_short(self, dataset):
        short = WeatherSimulator().generate(10, rng=0)
        with pytest.raises(ValueError, match="too short"):
            ContextFeatureBuilder().augment(dataset, short)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lookback": 0},
            {"forecast_horizon": -1},
            {"forecast_noise_sd": -0.5},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            ContextFeatureBuilder(**kwargs)

    def test_deterministic_forecast_noise(self, dataset, weather):
        a = ContextFeatureBuilder(seed=3).augment(dataset, weather)
        b = ContextFeatureBuilder(seed=3).augment(dataset, weather)
        assert np.array_equal(a.X, b.X)


class TestContextImprovesWeatherCoupledPrediction:
    def test_weather_features_help_on_coupled_fleet(self):
        """On weather-coupled usage, forecast features cut the error."""
        from repro.context.coupling import apply_weather_to_usage
        from repro.core.errors import mean_residual_error
        from repro.learn.forest import RandomForestRegressor

        rng = np.random.default_rng(0)
        n_days = 900
        weather = WeatherSimulator(wet_day_probability=0.35).generate(
            n_days, rng=1
        )
        base = np.where(
            rng.random(n_days) < 0.85,
            rng.normal(22_000, 3_000, n_days).clip(0, 86_400),
            0.0,
        )
        usage = apply_weather_to_usage(base, weather, rng=2)
        bundle = derive_series(usage, 1_000_000.0)
        dataset = build_relational_dataset(bundle, window=3)
        cut = int(0.7 * n_days)
        train_mask = dataset.t_index < cut
        test_mask = ~train_mask

        def emre(X):
            model = RandomForestRegressor(
                n_estimators=40, max_depth=12, random_state=0
            )
            model.fit(X[train_mask], dataset.y[train_mask])
            return mean_residual_error(
                dataset.y[test_mask], model.predict(X[test_mask])
            )

        plain = emre(dataset.X)
        contextual = ContextFeatureBuilder(
            lookback=7, forecast_horizon=10, forecast_noise_sd=1.0
        ).augment(dataset, weather)
        enriched = emre(contextual.X)
        # Weather features must not hurt and typically help on coupled data.
        assert enriched <= plain * 1.1
