"""Unit tests for repro.context.movements."""

import numpy as np
import pytest

from repro.context.movements import (
    days_since_relocation,
    infer_relocations,
)


def usage_with_gap(before=20, gap=15, after=20, level=20_000.0):
    return np.concatenate(
        [np.full(before, level), np.zeros(gap), np.full(after, level)]
    )


class TestInferRelocations:
    def test_long_gap_detected(self):
        events = infer_relocations(usage_with_gap(gap=15), min_gap_days=10)
        assert len(events) == 1
        assert events[0].start == 20
        assert events[0].end == 34
        assert events[0].n_days == 15

    def test_short_gap_ignored(self):
        events = infer_relocations(usage_with_gap(gap=5), min_gap_days=10)
        assert events == []

    def test_trailing_gap_detected(self):
        usage = np.concatenate([np.full(10, 1.0), np.zeros(12)])
        events = infer_relocations(usage, min_gap_days=10)
        assert len(events) == 1
        assert events[0].end == 21

    def test_multiple_gaps(self):
        usage = np.concatenate(
            [np.ones(5), np.zeros(11), np.ones(5), np.zeros(20), np.ones(3)]
        )
        events = infer_relocations(usage, min_gap_days=10)
        assert len(events) == 2

    def test_no_usage_at_all(self):
        events = infer_relocations(np.zeros(30), min_gap_days=10)
        assert len(events) == 1
        assert events[0].n_days == 30

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            infer_relocations(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            infer_relocations(np.zeros(5), min_gap_days=0)


class TestDaysSinceRelocation:
    def test_counts_up_after_gap(self):
        usage = usage_with_gap(before=5, gap=12, after=5)
        out = days_since_relocation(usage, min_gap_days=10)
        # During the relocation: 0; right after: 1, 2, ...
        assert np.all(out[5:17] == 0.0)
        assert out[17] == 1.0
        assert out[21] == 5.0

    def test_horizon_cap_before_any_event(self):
        usage = usage_with_gap(before=5, gap=12, after=5)
        out = days_since_relocation(usage, min_gap_days=10, horizon=365)
        assert np.all(out[:5] == 365.0)

    def test_all_active_series_is_capped_everywhere(self):
        out = days_since_relocation(np.full(20, 1.0), min_gap_days=10)
        assert np.all(out == 365.0)

    def test_feature_length_matches_usage(self):
        usage = usage_with_gap()
        assert days_since_relocation(usage).shape == usage.shape

    def test_real_regime_switcher_has_relocations(self, paper_fleet):
        """The regime-switcher archetype parks for weeks: events exist."""
        usage = paper_fleet["v02"].usage
        events = infer_relocations(usage, min_gap_days=14)
        assert len(events) >= 1
