"""Unit tests for repro.context.weather."""

import numpy as np
import pytest

from repro.context.weather import WeatherSeries, WeatherSimulator


class TestWeatherSimulator:
    def test_shapes_and_determinism(self):
        sim = WeatherSimulator()
        a = sim.generate(400, rng=0)
        b = sim.generate(400, rng=0)
        assert a.n_days == 400
        assert np.array_equal(a.temperature, b.temperature)
        assert np.array_equal(a.precipitation, b.precipitation)

    def test_seasonal_swing(self):
        sim = WeatherSimulator(
            mean_temperature=12.0, seasonal_amplitude=10.0, noise_sd=0.0
        )
        weather = sim.generate(730, rng=0)
        # Peak-to-trough should be about twice the amplitude.
        swing = weather.temperature.max() - weather.temperature.min()
        assert swing == pytest.approx(20.0, rel=0.05)

    def test_mean_temperature(self):
        sim = WeatherSimulator(mean_temperature=5.0)
        weather = sim.generate(3650, rng=1)
        assert weather.temperature.mean() == pytest.approx(5.0, abs=1.0)

    def test_wet_day_fraction(self):
        sim = WeatherSimulator(wet_day_probability=0.3)
        weather = sim.generate(3650, rng=2)
        wet = (weather.precipitation > 0).mean()
        assert 0.2 < wet < 0.4

    def test_precipitation_nonnegative(self):
        weather = WeatherSimulator().generate(1000, rng=3)
        assert weather.precipitation.min() >= 0.0

    def test_temperature_autocorrelated(self):
        sim = WeatherSimulator(
            seasonal_amplitude=0.0, noise_sd=3.0, ar_coefficient=0.8
        )
        weather = sim.generate(2000, rng=4)
        t = weather.temperature - weather.temperature.mean()
        lag1 = np.corrcoef(t[:-1], t[1:])[0, 1]
        assert lag1 > 0.6

    def test_masks(self):
        weather = WeatherSeries(
            temperature=np.array([-5.0, 10.0]),
            precipitation=np.array([0.0, 20.0]),
        )
        assert weather.is_freezing().tolist() == [True, False]
        assert weather.is_heavy_rain().tolist() == [False, True]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ar_coefficient": 1.0},
            {"wet_day_probability": 0.0},
            {"wet_season_amplitude": 1.0},
            {"rain_shape": 0.0},
            {"noise_sd": -1.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            WeatherSimulator(**kwargs)

    def test_zero_days(self):
        assert WeatherSimulator().generate(0, rng=0).n_days == 0

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            WeatherSeries(
                temperature=np.zeros(3), precipitation=np.zeros(2)
            )
