"""Unit tests for repro.context.coupling."""

import numpy as np
import pytest

from repro.context.coupling import WeatherCoupling, apply_weather_to_usage
from repro.context.weather import WeatherSeries


def weather(temperature, precipitation):
    return WeatherSeries(
        temperature=np.asarray(temperature, dtype=float),
        precipitation=np.asarray(precipitation, dtype=float),
    )


class TestApplyWeather:
    def test_dry_mild_days_untouched(self):
        usage = np.full(5, 20_000.0)
        w = weather([15.0] * 5, [0.0] * 5)
        out = apply_weather_to_usage(usage, w, rng=0)
        assert np.array_equal(out, usage)

    def test_heavy_rain_stops_work_probabilistically(self):
        usage = np.full(1000, 20_000.0)
        w = weather([15.0] * 1000, [20.0] * 1000)
        coupling = WeatherCoupling(rain_stop_probability=0.6)
        out = apply_weather_to_usage(usage, w, coupling, rng=0)
        stopped = (out == 0.0).mean()
        assert 0.5 < stopped < 0.7
        # Non-stopped rain days are slowed, not untouched.
        proceeding = out[out > 0]
        assert np.allclose(proceeding, 20_000.0 * coupling.rain_slowdown)

    def test_freezing_slowdown(self):
        usage = np.full(4, 10_000.0)
        w = weather([-3.0, -1.0, 5.0, 8.0], [0.0] * 4)
        out = apply_weather_to_usage(
            usage, w, WeatherCoupling(freezing_slowdown=0.5), rng=0
        )
        assert np.allclose(out, [5_000.0, 5_000.0, 10_000.0, 10_000.0])

    def test_original_array_untouched(self):
        usage = np.full(3, 10_000.0)
        w = weather([-3.0] * 3, [0.0] * 3)
        apply_weather_to_usage(usage, w, rng=0)
        assert np.all(usage == 10_000.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="days"):
            apply_weather_to_usage(
                np.zeros(3), weather([1.0] * 2, [0.0] * 2)
            )

    def test_deterministic_for_seed(self):
        usage = np.full(200, 20_000.0)
        w = weather([10.0] * 200, [15.0] * 200)
        a = apply_weather_to_usage(usage, w, rng=7)
        b = apply_weather_to_usage(usage, w, rng=7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heavy_rain_mm": 0.0},
            {"rain_stop_probability": 1.5},
            {"rain_slowdown": -0.1},
            {"freezing_slowdown": 2.0},
        ],
    )
    def test_invalid_coupling(self, kwargs):
        with pytest.raises(ValueError):
            WeatherCoupling(**kwargs)
