"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime as dt

import numpy as np
import pytest

from repro.core.series import VehicleSeries
from repro.fleet.generator import FleetGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def regression_data(rng):
    """A mildly non-linear regression problem: (X_train, y_train, X_test, y_test)."""
    X = rng.uniform(-3, 3, size=(400, 5))
    y = (
        np.sin(X[:, 0]) * 3.0
        + X[:, 1] ** 2
        + 0.5 * X[:, 2]
        + rng.normal(0, 0.1, 400)
    )
    return X[:300], y[:300], X[300:], y[300:]


@pytest.fixture
def linear_data(rng):
    """An exactly linear problem (plus tiny noise)."""
    X = rng.uniform(-2, 2, size=(200, 3))
    coef = np.array([2.0, -1.0, 0.5])
    y = X @ coef + 3.0 + rng.normal(0, 1e-9, 200)
    return X, y, coef, 3.0


@pytest.fixture(scope="session")
def small_fleet():
    """A 6-vehicle fleet over ~2.2 years — fast to generate, has cycles."""
    return FleetGenerator(
        n_vehicles=6,
        start_date=dt.date(2015, 1, 1),
        end_date=dt.date(2017, 3, 31),
        seed=7,
    ).generate()


@pytest.fixture(scope="session")
def paper_fleet():
    """The full paper-scale fleet (24 vehicles, 2015-2019)."""
    return FleetGenerator(seed=0).generate()


@pytest.fixture
def steady_series() -> VehicleSeries:
    """A deterministic constant-usage vehicle: 20 000 s/day, T_v = 2e5.

    One cycle completes every 10 days exactly, so every derived value
    can be asserted by hand.
    """
    usage = np.full(35, 20_000.0)
    return VehicleSeries(vehicle_id="steady", usage=usage, t_v=200_000.0)
