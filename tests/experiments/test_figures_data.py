"""Unit tests for repro.experiments.figures_data (Figures 1-3)."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentSetup
from repro.experiments.figures_data import (
    figure1_data,
    figure2_data,
    figure3_data,
    sample_vehicles,
)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(n_vehicles=4)


class TestSampleVehicles:
    def test_archetype_contrast(self, setup):
        v1, v2 = sample_vehicles(setup)
        assert v1.vehicle_id == "v01"
        assert v2.vehicle_id == "v02"
        assert setup.fleet["v01"].spec.profile.name == "steady_worker"
        assert setup.fleet["v02"].spec.profile.name == "regime_switcher"


class TestFigure1:
    def test_two_series_of_requested_length(self, setup):
        series = figure1_data(setup, n_days=90)
        assert len(series) == 2
        assert all(s.x.shape == (90,) for s in series)

    def test_usage_in_paper_range(self, setup):
        for s in figure1_data(setup, n_days=90):
            working = s.y[s.y > 0]
            assert working.max() <= 60_000  # paper plot caps ~50k
            assert working.min() >= 0

    def test_regime_switcher_has_idle_run(self, setup):
        """v2's defining feature: a multi-week idle block somewhere."""
        import itertools

        v2 = figure2_data(setup)[1]
        usage = setup.fleet["v02"].usage
        longest = max(
            (len(list(g)) for z, g in itertools.groupby(usage == 0) if z),
            default=0,
        )
        assert longest >= 14

    def test_invalid_n_days(self, setup):
        with pytest.raises(ValueError):
            figure1_data(setup, n_days=0)


class TestFigure2:
    def test_sawtooth_shape(self, setup):
        for s in figure2_data(setup):
            d = s.y[np.isfinite(s.y)]
            # Many cycles: D hits zero repeatedly and resets upward.
            assert (d == 0).sum() >= 3
            jumps = np.diff(s.y)
            assert np.nanmax(jumps) > 30  # reset jumps at cycle starts

    def test_full_span(self, setup):
        for s in figure2_data(setup):
            assert s.x.shape[0] == setup.fleet.vehicles[0].n_days


class TestFigure3:
    def test_single_cycle_monotonicity(self, setup):
        for s in figure3_data(setup):
            # Within one cycle L and D both decrease together.
            assert s.y[0] == s.y.max()
            assert s.y[-1] == 0
            assert np.all(np.diff(s.x) <= 1e-9)

    def test_l_spans_budget(self, setup):
        for s in figure3_data(setup):
            assert s.x.max() == pytest.approx(2_000_000.0)
            assert s.x.min() > 0

    def test_vertical_steps_at_idle_runs(self, setup):
        """Zero-usage days leave L unchanged while D decreases."""
        found_step = False
        for s in figure3_data(setup):
            flat = np.diff(s.x) == 0
            if flat.any():
                found_step = True
        assert found_step

    def test_out_of_range_cycle_index(self, setup):
        with pytest.raises(ValueError, match="completed cycles"):
            figure3_data(setup, cycle_index=999)
