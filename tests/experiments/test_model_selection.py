"""Unit tests for repro.experiments.model_selection."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentSetup
from repro.experiments.model_selection import run_model_selection


@pytest.fixture(scope="module")
def result():
    setup = ExperimentSetup(fast=True, n_old_vehicles=3)
    return run_model_selection(setup, algorithms=("BL", "LR", "RF"), window=3)


class TestModelSelection:
    def test_one_winner_per_vehicle(self, result):
        assert len(result.winners) == 3
        assert set(result.winners.values()) <= {"BL", "LR", "RF"}

    def test_winner_is_argmin_of_scores(self, result):
        for vid, winner in result.winners.items():
            scores = result.per_vehicle_e_mre[vid]
            finite = {k: v for k, v in scores.items() if np.isfinite(v)}
            if finite:
                assert scores[winner] == min(finite.values())

    def test_selection_beats_fixed_policies(self, result):
        fixed = result.single_algorithm_e_mre()
        assert result.selected_e_mre() <= min(fixed.values()) + 1e-9

    def test_winner_counts_sum(self, result):
        assert sum(result.winner_counts().values()) == len(result.winners)

    def test_render(self, result):
        text = result.render()
        assert "Per-vehicle model selection" in text
        assert "Selection payoff" in text
        assert "per-vehicle selection" in text
