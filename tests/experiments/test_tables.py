"""Small-scale tests for the table/figure experiment modules.

These run the full experiment machinery on a reduced setup (few
vehicles, no grid search) so the suite stays fast; the full-scale runs
live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentSetup
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.timing import run_timing


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(fast=True, n_old_vehicles=4)


@pytest.fixture(scope="module")
def table1(setup):
    return run_table1(setup, algorithms=("BL", "LR", "RF"))


@pytest.fixture(scope="module")
def figure4(setup):
    return run_figure4(setup, algorithms=("BL", "LR", "RF"), windows=(0, 6))


class TestTable1:
    def test_rows_per_algorithm(self, table1):
        assert [r.algorithm for r in table1.rows] == ["BL", "LR", "RF"]

    def test_bl_unchanged_by_restriction(self, table1):
        row = table1.row("BL")
        assert row.e_mre_all_data == row.e_mre_restricted
        assert row.reduction_pct == 0.0

    def test_restriction_helps_ml(self, table1):
        for key in ("LR", "RF"):
            row = table1.row(key)
            assert row.e_mre_restricted < row.e_mre_all_data

    def test_render(self, table1):
        text = table1.render()
        assert "Table 1" in text
        assert "BL" in text

    def test_unknown_row(self, table1):
        with pytest.raises(KeyError):
            table1.row("NN")


class TestFigure4:
    def test_curves_cover_windows(self, figure4):
        assert figure4.windows == [0, 6]
        for curve in figure4.e_mre.values():
            assert set(curve) == {0, 6}

    def test_bl_flat(self, figure4):
        curve = figure4.e_mre["BL"]
        assert curve[0] == curve[6]
        assert figure4.improvement()["BL"][6] == 0.0

    def test_improvement_anchored_at_zero(self, figure4):
        for curve in figure4.improvement().values():
            assert curve[0] == 0.0

    def test_best_window_minimizes(self, figure4):
        for algorithm, curve in figure4.e_mre.items():
            best = figure4.best_window(algorithm)
            assert curve[best] == min(curve.values())

    def test_windows_must_include_zero(self, setup):
        with pytest.raises(ValueError, match="include 0"):
            run_figure4(setup, algorithms=("LR",), windows=(3, 6))

    def test_render(self, figure4):
        assert "Figure 4" in figure4.render()


class TestTable2:
    def test_built_from_figure4(self, setup, figure4):
        table2 = run_table2(setup, figure4)
        assert {r.algorithm for r in table2.rows} == set(figure4.e_mre)
        for row in table2.rows:
            assert row.e_mre == figure4.e_mre[row.algorithm][row.best_window]

    def test_render(self, setup, figure4):
        assert "Table 2" in run_table2(setup, figure4).render()


class TestFigure5:
    def test_curves_per_algorithm(self, setup, figure4):
        table2 = run_table2(setup, figure4)
        figure5 = run_figure5(setup, table2, days=(1, 10, 29))
        assert set(figure5.curves) == set(figure4.e_mre)
        for curve in figure5.curves.values():
            assert set(curve) == {1, 10, 29}

    def test_render(self, setup, figure4):
        table2 = run_table2(setup, figure4)
        figure5 = run_figure5(setup, table2, days=(1, 29))
        assert "Figure 5" in figure5.render()


class TestTable3:
    @pytest.fixture(scope="class")
    def table3(self, setup):
        return run_table3(setup, algorithms=("LR", "RF"))

    def test_semi_new_labels(self, table3):
        assert set(table3.semi_new_e_mre) == {
            "BL",
            "LR_Sim",
            "LR_Uni",
            "RF_Sim",
            "RF_Uni",
        }

    def test_new_labels_are_uni_only(self, table3):
        assert set(table3.new_e_global) == {"LR_Uni", "RF_Uni"}

    def test_split_sizes(self, table3, setup):
        assert table3.n_train_vehicles + table3.n_test_vehicles == (
            setup.n_vehicles
        )

    def test_best_helpers(self, table3):
        assert table3.best_semi_new() in table3.semi_new_e_mre
        assert table3.best_new() in table3.new_e_global

    def test_render(self, table3):
        text = table3.render()
        assert "Table 3" in text
        assert "RF_Sim" in text


class TestTiming:
    def test_structure(self, setup):
        timing = run_timing(setup, algorithms=("BL", "LR"), windows=(0,))
        assert set(timing.fit_seconds) == {"BL", "LR"}
        assert all(v >= 0 for v in timing.at_window(0).values())

    def test_render(self, setup):
        timing = run_timing(setup, algorithms=("BL", "LR"), windows=(0, 6))
        text = timing.render()
        assert "Training time" in text
