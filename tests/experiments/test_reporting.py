"""Unit tests for repro.experiments.reporting."""

import numpy as np
import pytest

from repro.experiments.reporting import (
    format_mapping_series,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["A", "B"], [(1, 2.5), ("x", float("nan"))])
        lines = text.splitlines()
        assert lines[0].split() == ["A", "B"]
        assert set(lines[1]) == {"-"}
        assert "2.5" in lines[2]
        assert "-" in lines[3]  # NaN rendered as dash

    def test_title_prepended(self):
        text = format_table(["A"], [(1,)], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            format_table(["A", "B"], [(1,)])

    def test_columns_aligned(self):
        text = format_table(["Name", "V"], [("long-name", 1.0), ("s", 22.0)])
        lines = text.splitlines()
        # Both value cells start at the same column.
        assert lines[2].index("1.0") == lines[3].index("22.0")


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series([1, 2], [0.5, 0.25], "day", "error")
        assert "day" in text and "error" in text
        assert "0.5" in text


class TestFormatMappingSeries:
    def test_multi_series(self):
        data = {
            "RF": {0: 1.0, 6: 0.5},
            "LR": {0: 2.0, 6: 2.5},
        }
        text = format_mapping_series(data, x_label="W")
        header = text.splitlines()[0]
        assert header.split() == ["W", "RF", "LR"]

    def test_mismatched_x_rejected(self):
        data = {"a": {0: 1.0}, "b": {1: 1.0}}
        with pytest.raises(ValueError, match="different x"):
            format_mapping_series(data, x_label="W")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_mapping_series({}, x_label="W")
