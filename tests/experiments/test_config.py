"""Unit tests for repro.experiments.config."""

from repro.experiments.config import ExperimentSetup


class TestExperimentSetup:
    def test_fleet_cached(self):
        setup = ExperimentSetup(n_vehicles=4)
        assert setup.fleet is setup.fleet

    def test_fast_mode_subsamples_old_vehicles(self):
        setup = ExperimentSetup(fast=True, n_vehicles=24)
        assert len(setup.old_series) == 8
        assert len(setup.all_series) == 24

    def test_slow_mode_uses_all(self):
        setup = ExperimentSetup(fast=False, n_vehicles=6)
        assert len(setup.old_series) == 6

    def test_explicit_old_vehicle_count(self):
        setup = ExperimentSetup(n_vehicles=10, n_old_vehicles=3)
        assert len(setup.old_series) == 3

    def test_grid_mode(self):
        assert ExperimentSetup(fast=True).grid is None
        assert ExperimentSetup(fast=False).grid == "paper"

    def test_series_match_fleet(self):
        setup = ExperimentSetup(n_vehicles=5)
        assert [s.vehicle_id for s in setup.all_series] == (
            setup.fleet.vehicle_ids
        )

    def test_seed_changes_fleet(self):
        import numpy as np

        a = ExperimentSetup(seed=0, n_vehicles=2)
        b = ExperimentSetup(seed=9, n_vehicles=2)
        assert not np.array_equal(
            a.fleet.vehicles[0].usage, b.fleet.vehicles[0].usage
        )
