"""Golden regression tests against the checked-in ``results/*.txt``.

The benchmark harness writes its paper-style tables under ``results/``;
these tests re-run Tables 1-3 at the same bench setup (seed 0, fast
grids, 8-vehicle old subset) and pin the headline numbers against those
files.  The pipeline is deterministic for a fixed seed, so any drift
here means a behavior change somewhere in the stack — exactly what a
refactor like the fleet engine must not cause.

Printed values are rounded to one decimal, so the comparison tolerance
is just over the worst-case rounding error (0.05).
"""

from pathlib import Path

import pytest

from repro.core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from repro.experiments.config import ExperimentSetup
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3

RESULTS_DIR = Path(__file__).resolve().parent.parent.parent / "results"

# Rendered tables carry one decimal place; 0.06 > max rounding error.
TOL = 0.06


def parse_golden(name: str) -> dict[str, list[float | None]]:
    """Parse one rendered table into {row label: numeric columns}.

    Missing entries (rendered as ``-``) become ``None``.
    """
    path = RESULTS_DIR / f"{name}.txt"
    if not path.exists():
        pytest.skip(f"golden file {path} not checked in")
    rows: dict[str, list[float | None]] = {}
    for line in path.read_text().splitlines():
        fields = line.split()
        if not fields or set(line.strip()) == {"-"}:
            continue
        try:
            values = [
                None if f == "-" else float(f) for f in fields[1:]
            ]
        except ValueError:
            continue  # title or header line
        if values:
            rows[fields[0]] = values
    return rows


@pytest.fixture(scope="module")
def setup():
    """The exact setup the benchmark harness used to write results/."""
    return ExperimentSetup(seed=0, fast=True)


class TestTable1Golden:
    @pytest.fixture(scope="class")
    def golden(self):
        return parse_golden("table1")

    @pytest.fixture(scope="class")
    def result(self, setup):
        return run_table1(setup)

    def test_all_rows_present(self, golden, result):
        assert {r.algorithm for r in result.rows} == set(golden)

    def test_e_mre_columns_match(self, golden, result):
        for row in result.rows:
            e_all, e_restricted, _reduction = golden[row.algorithm]
            assert row.e_mre_all_data == pytest.approx(e_all, abs=TOL)
            assert row.e_mre_restricted == pytest.approx(
                e_restricted, abs=TOL
            )


class TestTable2Golden:
    """Pin Table 2's E_MRE at the golden best windows.

    Re-running the full Figure-4 sweep here would dominate suite
    runtime; instead the golden file fixes each algorithm's best ``W``
    and we verify the E_MRE at exactly that configuration.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return parse_golden("table2")

    @pytest.mark.parametrize("algorithm", ["BL", "LR", "LSVR", "RF", "XGB"])
    def test_e_mre_at_golden_window(self, golden, setup, algorithm):
        best_window, e_mre = golden[algorithm]
        experiment = OldVehicleExperiment(
            OldVehicleConfig(
                window=int(best_window),
                restrict_to_horizon=True,
                grid=setup.grid,
            )
        )
        value = experiment.run_fleet(setup.old_series, algorithm).e_mre
        assert value == pytest.approx(e_mre, abs=TOL)


class TestTable3Golden:
    @pytest.fixture(scope="class")
    def golden(self):
        return parse_golden("table3")

    @pytest.fixture(scope="class")
    def result(self, setup):
        return run_table3(setup)

    def test_all_rows_present(self, golden, result):
        assert set(result.semi_new_e_mre) == set(golden)

    def test_semi_new_e_mre_matches(self, golden, result):
        for label, value in result.semi_new_e_mre.items():
            assert value == pytest.approx(golden[label][0], abs=TOL)

    def test_new_e_global_matches(self, golden, result):
        for label, (_, e_global) in golden.items():
            if e_global is None:
                assert label not in result.new_e_global
            else:
                assert result.new_e_global[label] == pytest.approx(
                    e_global, abs=TOL
                )
