"""Property-based tests (hypothesis) for journal framing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import (
    decode_f64,
    decode_record,
    encode_f64,
    encode_record,
)

# Payload keys: JSON-object keys minus the reserved framing fields.
_keys = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True).filter(
    lambda k: k not in ("q", "k")
)
_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=40),
    st.booleans(),
    st.none(),
)
_arrays = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=64), max_size=32
).map(lambda xs: np.asarray(xs, dtype=np.float64))
_payloads = st.dictionaries(_keys, st.one_of(_scalars, _arrays), max_size=6)


class TestRecordRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(
        seq=st.integers(min_value=1, max_value=2**40),
        kind=st.from_regex(r"[a-z][a-z0-9_-]{0,15}", fullmatch=True),
        payload=_payloads,
    )
    def test_encode_decode_round_trip(self, seq, kind, payload):
        record = decode_record(encode_record(seq, kind, payload))
        assert record.seq == seq
        assert record.kind == kind
        assert set(record.payload) == set(payload)
        for key, value in payload.items():
            if isinstance(value, np.ndarray):
                # Arrays travel as base64 and must survive bit-exactly,
                # NaN payload bits included.
                restored = decode_f64(record.payload[key])
                assert restored.tobytes() == value.tobytes()
            else:
                assert record.payload[key] == value

    @settings(max_examples=100, deadline=None)
    @given(
        payload=_payloads,
        position=st.integers(min_value=0, max_value=10_000),
    )
    def test_any_corrupted_byte_is_detected(self, payload, position):
        line = bytearray(encode_record(1, "ingest", payload))
        body_len = len(line) - 10  # " %08x\n" CRC framing suffix
        index = position % body_len
        original = line[index]
        line[index] ^= 0x5A
        try:
            record = decode_record(bytes(line))
        except ValueError:
            return  # detected — the expected outcome
        # A flip that still decodes must round-trip to different
        # content only if the CRC also collided, which 32-bit CRCs
        # make effectively impossible for single-byte flips.
        line[index] = original
        assert record == decode_record(bytes(line))

    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=128,
        )
    )
    def test_f64_round_trip_bit_exact(self, values):
        array = np.asarray(values, dtype=np.float64)
        restored = decode_f64(encode_f64(array))
        assert restored.dtype == np.float64
        assert restored.tobytes() == array.tobytes()
