"""Unit tests for the write-ahead journal: framing, rotation, repair."""

import numpy as np
import pytest

from repro.durability import (
    JournalCorruptError,
    WriteAheadJournal,
    decode_f64,
    decode_record,
    encode_f64,
    encode_record,
)


class TestFraming:
    def test_round_trip_flat_payload(self):
        line = encode_record(7, "ingest", {"v": "truck-01", "s": 12345, "d": 3})
        record = decode_record(line)
        assert record.seq == 7
        assert record.kind == "ingest"
        assert record.payload == {"v": "truck-01", "s": 12345, "d": 3}

    def test_round_trip_array_payload(self):
        values = np.array([1.5, float("nan"), -0.0, 2e300])
        line = encode_record(1, "day", {"u": values, "d": 9})
        record = decode_record(line)
        restored = decode_f64(record.payload["u"])
        assert restored.tobytes() == values.tobytes()  # bit-exact, NaN-safe

    def test_fast_path_matches_json_encoder(self):
        # The hand-framed fast path must emit byte-identical JSON to the
        # sorted-key encoder, or mixed-version journals would not be
        # comparable line by line.
        import json

        line = encode_record(3, "register", {"v": "v01", "t": 200000})
        body = line.rsplit(b" ", 1)[0]
        assert json.loads(body) == {"q": 3, "k": "register", "v": "v01",
                                    "t": 200000}
        assert body == json.dumps(
            {"q": 3, "k": "register", "v": "v01", "t": 200000},
            separators=(",", ":"),
            sort_keys=True,
        ).encode()

    def test_escape_fallback(self):
        line = encode_record(1, "weird", {"x": 'needs "quotes"', "y": "caffè"})
        record = decode_record(line)
        assert record.payload == {"x": 'needs "quotes"', "y": "caffè"}

    def test_crc_rejects_flipped_byte(self):
        line = bytearray(encode_record(1, "ingest", {"v": "v01", "s": 100}))
        line[5] ^= 0x01
        with pytest.raises(ValueError, match="CRC"):
            decode_record(bytes(line))


class TestAppendReplay:
    def test_reopen_replays_committed_records(self, tmp_path):
        with WriteAheadJournal(tmp_path / "j", fsync_every=2) as journal:
            for i in range(5):
                journal.append("ingest", v="v01", s=i)
            assert journal.last_seq == 5
        reopened = WriteAheadJournal(tmp_path / "j", fsync_every=2)
        records = list(reopened.replay())
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert [r.payload["s"] for r in records] == list(range(5))
        reopened.close()

    def test_replay_after_seq(self, tmp_path):
        with WriteAheadJournal(tmp_path / "j") as journal:
            for i in range(4):
                journal.append("ingest", v="v01", s=i)
            assert [r.seq for r in journal.replay(after_seq=2)] == [3, 4]

    def test_group_commit_durable_seq(self, tmp_path):
        journal = WriteAheadJournal(tmp_path / "j", fsync_every=3)
        journal.append("ingest", v="v01", s=0)
        journal.append("ingest", v="v01", s=1)
        assert journal.durable_seq == 0  # below the fsync threshold
        journal.append("ingest", v="v01", s=2)
        assert journal.durable_seq == 3  # group commit fired
        journal.append("ingest", v="v01", s=3)
        assert journal.sync() == 4
        journal.close()

    def test_segment_rotation(self, tmp_path):
        journal = WriteAheadJournal(
            tmp_path / "j", fsync_every=1, segment_max_bytes=1024
        )
        for i in range(60):
            journal.append("ingest", v="v01", s=i)
        assert journal.segment_count() > 1
        journal.close()
        reopened = WriteAheadJournal(tmp_path / "j")
        assert [r.seq for r in reopened.replay()] == list(range(1, 61))
        reopened.close()

    def test_prune_drops_old_segments(self, tmp_path):
        journal = WriteAheadJournal(
            tmp_path / "j", fsync_every=1, segment_max_bytes=1024
        )
        for i in range(100):
            journal.append("ingest", v="v01", s=i)
        before = journal.segment_count()
        assert before > 2
        journal.prune(up_to_seq=80)
        assert journal.segment_count() < before
        # Everything past the prune point must still replay.
        seqs = [r.seq for r in journal.replay(after_seq=80)]
        assert seqs == list(range(81, 101))
        journal.close()


class TestRepair:
    def _journal_with_records(self, root, n=4):
        with WriteAheadJournal(root, fsync_every=1) as journal:
            for i in range(n):
                journal.append("ingest", v="v01", s=i)

    def test_torn_tail_truncated_on_open(self, tmp_path):
        self._journal_with_records(tmp_path / "j")
        segment = sorted((tmp_path / "j").glob("seg-*.jrnl"))[-1]
        data = segment.read_bytes()
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        torn_at = last_line_start + (len(data) - last_line_start) // 2
        segment.write_bytes(data[:torn_at])

        reopened = WriteAheadJournal(tmp_path / "j")
        assert reopened.last_seq == 3  # final record dropped
        assert [r.seq for r in reopened.replay()] == [1, 2, 3]
        # The torn fragment is physically gone: appends go after seq 3.
        seq = reopened.append("ingest", v="v01", s=99)
        assert seq == 4
        reopened.close()
        final = WriteAheadJournal(tmp_path / "j")
        assert [r.payload["s"] for r in final.replay()] == [0, 1, 2, 99]
        final.close()

    def test_mid_segment_damage_is_corruption(self, tmp_path):
        self._journal_with_records(tmp_path / "j")
        segment = sorted((tmp_path / "j").glob("seg-*.jrnl"))[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]
        segment.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError):
            WriteAheadJournal(tmp_path / "j")

    def test_scan_reports_torn_bytes(self, tmp_path):
        self._journal_with_records(tmp_path / "j")
        segment = sorted((tmp_path / "j").glob("seg-*.jrnl"))[-1]
        segment.write_bytes(segment.read_bytes()[:-7])
        report = WriteAheadJournal.scan(tmp_path / "j")
        assert report["last_seq"] == 3
        assert report["torn_tail_bytes"] > 0


class TestEncodeF64:
    def test_bit_exact(self):
        values = np.array([0.1, -0.0, float("inf"), float("nan"), 1e-320])
        restored = decode_f64(encode_f64(values))
        assert restored.tobytes() == values.tobytes()

    def test_empty(self):
        assert decode_f64(encode_f64(np.array([]))).size == 0
