"""SIGKILL kill-recovery drill: acknowledged writes must survive."""

import json

from repro.durability.drill import generate_ops, kill_recovery_drill


def _dump(ops) -> str:
    # json round-trip: op streams contain NaN, which breaks == directly.
    return json.dumps(ops)


class TestGenerateOps:
    def test_deterministic(self):
        assert _dump(generate_ops(3, 10, seed=7)) == _dump(
            generate_ops(3, 10, seed=7)
        )
        assert _dump(generate_ops(3, 10, seed=7)) != _dump(
            generate_ops(3, 10, seed=8)
        )

    def test_registers_before_ingests(self):
        ops = generate_ops(2, 5, seed=0)
        kinds = [op["op"] for op in ops]
        first_ingest = kinds.index("ingest")
        assert all(k in ("register", "series") for k in kinds[:first_ingest])


class TestKillRecovery:
    def test_clean_kill_recovers_bit_identical(self, tmp_path):
        report = kill_recovery_drill(
            tmp_path / "drill",
            n_vehicles=3,
            days=12,
            seed=0,
            kill_after=20,
            throttle_ms=0.5,
        )
        assert report["ok"], report
        assert report["killed"]
        assert report["acked_survived"]
        assert report["forecasts_match"]
        assert report["health_match"]
        assert report["last_seq"] >= report["durable_acked"]

    def test_torn_tail_kill_recovers(self, tmp_path):
        report = kill_recovery_drill(
            tmp_path / "drill",
            n_vehicles=3,
            days=12,
            seed=1,
            kill_after=18,
            torn_tail=True,
            throttle_ms=0.5,
        )
        assert report["ok"], report
        assert report["torn_tail"]
        assert report["torn_records_dropped"] >= 1
        assert report["acked_survived"]
        assert report["forecasts_match"]
