"""Unit tests for atomic checkpoints: generations, checksums, fallback."""

import pytest

from repro.durability import (
    CheckpointCorruptError,
    CheckpointManager,
)


def _state(n: int) -> dict:
    return {"marker": n, "vehicles": {f"v{i:02d}": [1.0 * i] for i in range(3)}}


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(_state(1), seq=10)
        checkpoint = manager.load_latest()
        assert checkpoint is not None
        assert checkpoint.seq == 10
        assert checkpoint.state == _state(1)

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        assert manager.load_latest() is None
        assert manager.latest_seq() is None

    def test_keep_generations(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt", keep=2)
        for seq in (10, 20, 30, 40):
            manager.save(_state(seq), seq=seq)
        assert manager.seqs() == [30, 40]
        assert manager.oldest_retained_seq() == 30
        assert manager.load_latest().seq == 40

    def test_negative_seq_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        with pytest.raises(ValueError, match="seq"):
            manager.save(_state(0), seq=-1)


class TestCorruptionFallback:
    def _two_generations(self, tmp_path) -> CheckpointManager:
        manager = CheckpointManager(tmp_path / "ckpt", keep=3)
        manager.save(_state(1), seq=10)
        manager.save(_state(2), seq=20)
        return manager

    def _corrupt(self, manager: CheckpointManager, seq: int) -> None:
        path = manager._path(seq)
        path.write_bytes(path.read_bytes()[:-5] + b"XXXXX")

    def test_falls_back_to_previous_generation(self, tmp_path):
        manager = self._two_generations(tmp_path)
        self._corrupt(manager, 20)
        checkpoint = manager.load_latest()
        assert checkpoint.seq == 10
        assert checkpoint.state == _state(1)
        assert manager.discarded == 1

    def test_quarantines_corrupt_generation(self, tmp_path):
        manager = self._two_generations(tmp_path)
        self._corrupt(manager, 20)
        manager.load_latest()
        assert 20 not in manager.seqs()
        quarantined = list((tmp_path / "ckpt" / "quarantine").iterdir())
        assert quarantined  # payload (and sidecar) moved aside

    def test_dry_run_leaves_corrupt_files_in_place(self, tmp_path):
        manager = self._two_generations(tmp_path)
        self._corrupt(manager, 20)
        checkpoint = manager.load_latest(quarantine=False)
        assert checkpoint.seq == 10
        assert 20 in manager.seqs()  # read-only posture: nothing moved

    def test_missing_sidecar_is_corrupt(self, tmp_path):
        manager = self._two_generations(tmp_path)
        manager._sidecar(manager._path(20)).unlink()
        assert manager.load_latest().seq == 10

    def test_all_generations_corrupt(self, tmp_path):
        manager = self._two_generations(tmp_path)
        self._corrupt(manager, 10)
        self._corrupt(manager, 20)
        assert manager.load_latest() is None

    def test_load_reports_checksum_mismatch(self, tmp_path):
        manager = self._two_generations(tmp_path)
        self._corrupt(manager, 20)
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            manager._load(20)
