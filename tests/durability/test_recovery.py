"""Recovery tests: journal-before-apply, replay equivalence, locking."""

import numpy as np
import pytest

from repro.durability import (
    DurabilityConfig,
    LockFile,
    LockHeldError,
    RecoveryError,
    RecoveryManager,
    WriteAheadJournal,
)
from repro.serving import (
    EngineConfig,
    FleetEngine,
    IngestionGuard,
    MaintenancePredictionService,
)

T_V = 200_000.0


def fresh_service() -> MaintenancePredictionService:
    return MaintenancePredictionService(
        t_v=T_V, window=0, algorithm="LR", guard=IngestionGuard()
    )


def drive(service, n_vehicles=3, days=24, seed=0) -> None:
    rng = np.random.default_rng(seed)
    ids = [f"v{i:02d}" for i in range(n_vehicles)]
    for vehicle_id in ids:
        service.register_vehicle(vehicle_id)
    for day in range(days):
        for vehicle_id in ids:
            service.ingest(
                vehicle_id, float(rng.uniform(15_000, 25_000)), day=day
            )


def forecasts(service, n_vehicles=3) -> dict:
    return {
        f"v{i:02d}": service.predict(f"v{i:02d}").to_dict()
        for i in range(n_vehicles)
    }


class TestRecoverReplay:
    def test_cold_start_then_replay_equivalence(self, tmp_path):
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        report = manager.recover()
        assert report.checkpoint_seq == 0 and report.replayed == 0
        drive(manager.service)
        expected = forecasts(manager.service)
        manager.close(checkpoint=False)  # journal only, no snapshot

        recovered = RecoveryManager(tmp_path / "state", fresh_service())
        report = recovered.recover()
        assert report.checkpoint_seq == 0
        assert report.replayed == report.last_seq > 0
        assert forecasts(recovered.service) == expected
        recovered.close()

    def test_checkpoint_plus_tail_replay(self, tmp_path):
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        manager.recover()
        drive(manager.service, days=12)
        checkpoint_seq = manager.checkpoint()
        drive_rng = np.random.default_rng(99)
        for day in range(12, 18):
            for i in range(3):
                manager.service.ingest(
                    f"v{i:02d}",
                    float(drive_rng.uniform(15_000, 25_000)),
                    day=day,
                )
        expected = forecasts(manager.service)
        manager.close(checkpoint=False)

        recovered = RecoveryManager(tmp_path / "state", fresh_service())
        report = recovered.recover()
        assert report.checkpoint_seq == checkpoint_seq
        assert 0 < report.replayed == report.last_seq - checkpoint_seq
        assert forecasts(recovered.service) == expected
        recovered.close()

    def test_recover_is_idempotent(self, tmp_path):
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        first = manager.recover()
        assert manager.recover() is first
        manager.close()

    def test_fleet_day_record_without_ids(self, tmp_path):
        """Full-fleet ``day`` records omit the id list; replay must
        reconstruct the column order from the registered fleet."""
        engine = FleetEngine(
            t_v=T_V,
            window=0,
            algorithm="LR",
            guard=IngestionGuard(),
            config=EngineConfig(max_workers=1, executor="serial"),
        )
        ids = [f"v{i:02d}" for i in range(4)]
        engine.register_fleet(ids)
        manager = RecoveryManager(tmp_path / "state", engine.service)
        manager.recover()
        rng = np.random.default_rng(3)
        for day in range(20):
            engine.ingest_day(
                dict(zip(ids, rng.uniform(15_000, 25_000, size=len(ids)))),
                day=day,
            )
        expected = {v: engine.service.predict(v).to_dict() for v in ids}
        # The bulk records must actually be the compact fleet-wide form.
        day_records = [
            r for r in manager.journal.replay() if r.kind == "day"
        ]
        assert day_records and all(
            "vs" not in r.payload for r in day_records
        )
        manager.close(checkpoint=False)

        recovered = RecoveryManager(tmp_path / "state", fresh_service())
        recovered.recover()
        got = {v: recovered.service.predict(v).to_dict() for v in ids}
        assert got == expected
        recovered.close()

    def test_fleet_day_record_length_mismatch_is_error(self, tmp_path):
        root = tmp_path / "state" / "journal"
        with WriteAheadJournal(root) as journal:
            journal.append("register", v="v01")
            # Fleet-wide record claiming two columns for one vehicle.
            journal.append("day", u=np.array([1_000.0, 2_000.0]), d=0)
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        with pytest.raises(RecoveryError, match="fleet-wide"):
            manager.recover()

    def test_pruned_journal_without_checkpoint_is_error(self, tmp_path):
        root = tmp_path / "state" / "journal"
        with WriteAheadJournal(root, segment_max_bytes=1024) as journal:
            for i in range(100):
                journal.append("ingest", v="v01", s=i)
            journal.prune(up_to_seq=80)
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        with pytest.raises(RecoveryError, match="checkpoint"):
            manager.recover()


class TestJournalBeforeApply:
    def test_mutations_are_journaled(self, tmp_path):
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        manager.recover()
        service = manager.service
        service.register_vehicle("v01")
        service.ingest("v01", 20_000.0, day=0)
        service.ingest_series("v01", [19_000.0, 21_000.0], start_day=1)
        kinds = [r.kind for r in manager.journal.replay()]
        assert kinds == ["register", "ingest", "series"]
        manager.close()

    def test_replay_does_not_rejournal(self, tmp_path):
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        manager.recover()
        manager.service.register_vehicle("v01")
        manager.service.ingest("v01", 20_000.0, day=0)
        last_seq = manager.journal.last_seq
        manager.close(checkpoint=False)

        recovered = RecoveryManager(tmp_path / "state", fresh_service())
        report = recovered.recover()
        # Idempotent replay: re-execution must not append new records.
        assert recovered.journal.last_seq == last_seq == report.last_seq
        recovered.close(checkpoint=False)


class TestLocking:
    def test_foreign_live_pid_is_fenced(self, tmp_path):
        state_dir = tmp_path / "state"
        state_dir.mkdir(parents=True)
        # Pid 1 is always alive; a lock held by another live process
        # must refuse recovery outright.
        (state_dir / "service.lock").write_text("1")
        manager = RecoveryManager(state_dir, fresh_service())
        with pytest.raises(LockHeldError):
            manager.recover()

    def test_own_pid_lock_is_stolen(self, tmp_path):
        # A lock recorded under our own pid means *we* crashed a prior
        # manager without release; refusing would deadlock forever, so
        # acquire() steals it.
        first = RecoveryManager(tmp_path / "state", fresh_service())
        first.recover()
        second = RecoveryManager(tmp_path / "state", fresh_service())
        first.journal.close()  # avoid two buffered writers on one file
        report = second.recover()
        assert report.lock_stolen
        second.close()

    def test_stale_lock_is_stolen(self, tmp_path):
        state_dir = tmp_path / "state"
        state_dir.mkdir(parents=True)
        # A pid that cannot be alive: max_pid + fallback-safe huge value.
        (state_dir / "service.lock").write_text("99999999")
        manager = RecoveryManager(state_dir, fresh_service())
        report = manager.recover()
        assert report.lock_stolen
        manager.close()

    def test_lock_released_on_close(self, tmp_path):
        manager = RecoveryManager(tmp_path / "state", fresh_service())
        manager.recover()
        manager.close()
        again = RecoveryManager(tmp_path / "state", fresh_service())
        again.recover()
        again.close()


class TestCheckpointing:
    def test_checkpoint_prunes_journal(self, tmp_path):
        config = DurabilityConfig(segment_max_bytes=1024)
        manager = RecoveryManager(
            tmp_path / "state", fresh_service(), config=config
        )
        manager.recover()
        drive(manager.service, days=40)
        assert manager.journal.segment_count() > 1
        manager.checkpoint()
        # Segments wholly below the checkpoint are gone; the tail stays.
        assert manager.journal.segment_count() == 1
        manager.close()

    def test_maybe_checkpoint_threshold(self, tmp_path):
        config = DurabilityConfig(checkpoint_every=10)
        manager = RecoveryManager(
            tmp_path / "state", fresh_service(), config=config
        )
        manager.recover()
        manager.service.register_vehicle("v01")
        for day in range(5):
            manager.service.ingest("v01", 20_000.0, day=day)
        assert not manager.maybe_checkpoint()  # 6 records < 10
        for day in range(5, 12):
            manager.service.ingest("v01", 20_000.0, day=day)
        assert manager.maybe_checkpoint()
        assert manager.last_checkpoint_seq == manager.journal.last_seq
        manager.close()
