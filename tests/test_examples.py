"""Smoke tests: every shipped example must run end to end.

Marked slow-ish (each runs a real scenario); they guard the README's
promise that the examples are runnable.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesInventory:
    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5
        assert "quickstart.py" in EXAMPLES

    def test_every_example_has_main(self):
        for name in EXAMPLES:
            module = load_example(name)
            assert callable(getattr(module, "main", None)), name


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
