"""End-to-end drift-injection drill: detection -> promotion -> recovery."""

import pytest

from repro.lifecycle import drift_promotion_drill


@pytest.fixture(scope="module")
def report():
    return drift_promotion_drill(seed=0)


class TestDriftPromotionDrill:
    def test_all_checks_pass(self, report):
        failed = [c["name"] for c in report["checks"] if not c["ok"]]
        assert report["ok"] and failed == [], report

    def test_exactly_the_drifted_vehicles_promoted(self, report):
        assert report["promoted"] == report["drifted"] == ["lc00", "lc01"]
        assert report["counters"]["promotions"] >= len(report["drifted"])

    def test_degradation_and_recovery_visible_in_mae(self, report):
        for vid in report["drifted"]:
            assert report["peak_mae"][vid] > 2.0  # breached the threshold
            assert report["final_mae"][vid] <= 2.0  # recovered under it

    def test_deterministic_under_seed(self, report):
        again = drift_promotion_drill(seed=0)
        assert again["digest"] == report["digest"]
        assert again["final_mae"] == report["final_mae"]

    def test_rejects_bad_n_drifted(self):
        with pytest.raises(ValueError, match="n_drifted"):
            drift_promotion_drill(n_vehicles=3, n_drifted=4)
