"""Lifecycle decisions must survive crashes and replay idempotently."""

import numpy as np
import pytest

from repro.lifecycle.drill import (
    _recover_stack,
    apply_lifecycle_op,
    generate_lifecycle_ops,
    lifecycle_kill_drill,
)

PROBE = np.array([[100_000.0]])


def run_durable_scenario(state_dir, *, sweep_days=12):
    """Replay the drift op stream through a journaled stack.

    Returns ``(engine, controller, manager, promoted)`` with the manager
    still open; ``promoted`` maps vehicle id -> promoted version.
    """
    engine, controller, manager = _recover_stack(state_dir, with_store=True)
    ops = generate_lifecycle_ops(
        4, 0, sweep_days=sweep_days, n_drifted=1
    )
    for op in ops:
        apply_lifecycle_op(engine, controller, op)
        manager.maybe_checkpoint()
    promoted = {
        e["vehicle_id"]: e["version"]
        for e in engine.service.lifecycle_log
        if e["action"] == "promote"
    }
    return engine, controller, manager, promoted


class TestGenerateOps:
    def test_deterministic(self):
        import json

        a = json.dumps(generate_lifecycle_ops(3, 5))
        assert a == json.dumps(generate_lifecycle_ops(3, 5))
        assert a != json.dumps(generate_lifecycle_ops(3, 6))

    def test_sweeps_only_after_drift_phase(self):
        ops = generate_lifecycle_ops(2, 0, warm_days=20, drift_days=10)
        kinds = [op["op"] for op in ops]
        first_sweep = kinds.index("sweep")
        day_count = kinds[:first_sweep].count("day")
        assert day_count >= 30  # warm + drift days precede every sweep


class TestJournaledPromotion:
    def test_promotion_survives_restart_bit_identically(self, tmp_path):
        state = tmp_path / "state"
        engine, _, manager, promoted = run_durable_scenario(state)
        assert promoted, "scenario must journal at least one promotion"
        service = engine.service
        before = {
            vid: np.asarray(service._vehicles[vid].model.predict(PROBE))
            for vid in promoted
        }
        log_before = [dict(e) for e in service.lifecycle_log]
        manager.close()

        engine2, _, manager2 = _recover_stack(state, with_store=True)
        service2 = engine2.service
        assert [dict(e) for e in service2.lifecycle_log] == log_before
        for vid, version in promoted.items():
            service2._ensure_vehicle_model(vid)
            state2 = service2._vehicles[vid]
            assert state2.model_version == version
            np.testing.assert_array_equal(
                np.asarray(state2.model.predict(PROBE)), before[vid]
            )
        manager2.close()

    def test_replay_is_idempotent_across_recoveries(self, tmp_path):
        state = tmp_path / "state"
        _, _, manager, promoted = run_durable_scenario(state)
        manager.close()
        snapshots = []
        for _ in range(2):
            engine, _, mgr = _recover_stack(state, with_store=True)
            service = engine.service
            for vid in promoted:
                service._ensure_vehicle_model(vid)
            snapshots.append(
                {
                    "log": [dict(e) for e in service.lifecycle_log],
                    "versions": {
                        vid: service._vehicles[vid].model_version
                        for vid in service.vehicle_ids
                    },
                }
            )
            mgr.close(checkpoint=False)
        assert snapshots[0] == snapshots[1]

    def test_checkpoint_restore_reloads_exact_artifact(self, tmp_path):
        """A restored model_version must reload its artifact, not retrain.

        Checkpoints persist the promoted version number but not the
        in-memory model; the first touch after recovery must reinstall
        that exact stored artifact instead of retraining over the
        promotion (which would silently mint a new version).
        """
        state = tmp_path / "state"
        engine, _, manager, promoted = run_durable_scenario(state)
        manager.checkpoint()
        manager.close(checkpoint=False)

        engine2, _, manager2 = _recover_stack(state, with_store=True)
        service2 = engine2.service
        for vid, version in promoted.items():
            key = f"{vid}.per-vehicle"
            versions_before = service2.store.versions(key)
            vstate = service2._vehicles[vid]
            assert vstate.model_version == version  # from the checkpoint
            forecast = service2.predict(vid)
            assert forecast.model_version == version
            assert not forecast.degraded
            # No new version was trained or persisted along the way.
            assert service2.store.versions(key) == versions_before
            stored = service2.store.load(key, version)
            np.testing.assert_array_equal(
                np.asarray(vstate.model.predict(PROBE)),
                np.asarray(stored.predictor.predict(PROBE)),
            )
        manager2.close(checkpoint=False)

    def test_recovery_without_store_degrades_to_lazy_retrain(self, tmp_path):
        state = tmp_path / "state"
        _, _, manager, promoted = run_durable_scenario(state)
        manager.close()
        engine2, _, manager2 = _recover_stack(state, with_store=False)
        service2 = engine2.service
        for vid in promoted:
            forecast = service2.predict(vid)
            assert not forecast.degraded
            assert forecast.model_version is None  # retrained, not restored
        manager2.close(checkpoint=False)


class TestKillDrill:
    def test_sigkill_mid_sweep_recovers_consistently(self, tmp_path):
        report = lifecycle_kill_drill(tmp_path / "drill", seed=0)
        assert report["ok"], report
        assert report["promotions_journaled"] >= 1
        assert report["artifacts_checked"] >= 1
        assert report["last_seq"] >= report["durable_acked"]
        failed = [c["name"] for c in report["checks"] if not c["ok"]]
        assert failed == []
