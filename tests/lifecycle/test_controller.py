"""LifecycleController sweeps against a drifted miniature fleet."""

import pytest

from repro.lifecycle import LifecycleController, PromotionPolicy
from repro.lifecycle.drill import _build_stack

from .conftest import run_scenario


class TestValidation:
    def test_rejects_bad_staleness(self, tmp_path):
        engine, _ = _build_stack(store_dir=str(tmp_path / "m"))
        with pytest.raises(ValueError, match="staleness_cycles"):
            LifecycleController(engine, staleness_cycles=0)

    def test_rejects_bad_retention(self, tmp_path):
        engine, _ = _build_stack(store_dir=str(tmp_path / "m"))
        with pytest.raises(ValueError, match="retention"):
            LifecycleController(engine, retention=0)

    def test_constructor_attaches_to_engine(self, tmp_path):
        engine, controller = _build_stack(store_dir=str(tmp_path / "m"))
        assert engine.lifecycle is controller


class TestCandidates:
    def test_only_drifted_vehicles_are_candidates(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        due = controller.candidates()
        assert [vid for vid, _ in due] == drifted
        for _, reason in due:
            assert reason.startswith("drift:")

    def test_pinned_vehicles_are_never_candidates(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        for vid in drifted:
            controller.pin(vid, 1)  # v1 = the initial champion
        assert controller.candidates() == []

    def test_staleness_schedule_sweeps_undrifted_champions(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        stale = LifecycleController(
            engine, controller.policy, staleness_cycles=2
        )
        reasons = dict(stale.candidates())
        # Frozen champions fall behind on every vehicle; the drifted one
        # still surfaces through its (higher-priority) drift alert.
        assert set(reasons) == set(engine.service.vehicle_ids)
        for vid, reason in reasons.items():
            expected = "drift:" if vid in drifted else "stale:"
            assert reason.startswith(expected)


class TestSweep:
    def test_drifted_challenger_promotes_and_is_attributed(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        service = engine.service
        before = {vid: service._vehicles[vid].model_version
                  for vid in service.vehicle_ids}
        entries = controller.run_once()
        assert [e["vehicle_id"] for e in entries] == drifted
        for entry in entries:
            assert entry["outcome"] == "promoted"
            assert entry["version"] == before[entry["vehicle_id"]] + 1
            assert entry["shadow"]["improvement"] > 0
        # Promotion swapped only the drifted champions, atomically.
        for vid in service.vehicle_ids:
            state = service._vehicles[vid]
            assert state.model is not None
            expected = before[vid] + (1 if vid in drifted else 0)
            assert state.model_version == expected
        # The new champion is attributed in the next forecast.
        vid = drifted[0]
        forecast = service.predict(vid)
        assert forecast.model_version == before[vid] + 1

    def test_promotion_resets_monitor_and_prunes_store(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        service, vid = engine.service, drifted[0]
        assert service.monitor.mean_abs_error(vid) > 0
        controller.run_once()
        # Fresh champion is judged on its own residuals only.
        assert service.monitor.mean_abs_error(vid) != service.monitor.mean_abs_error(vid)  # NaN
        # Retention keeps at most `retention` versions plus the active one.
        versions = service.store.versions(f"{vid}.per-vehicle")
        assert len(versions) <= controller.retention + 1
        assert service._vehicles[vid].model_version in versions

    def test_sweep_consumes_alerts_until_cooldown(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        entries = controller.run_once()
        assert entries  # first sweep acts...
        assert controller.run_once() == []  # ...second has nothing due
        counters = controller.counters()
        assert counters["sweeps"] == 2
        assert counters["promotions"] == len(drifted)


class TestFailureHandling:
    def test_open_breaker_skips_evaluation(self, drifted_stack):
        from repro.serving.reliability import CircuitBreaker

        engine, controller, drifted = drifted_stack
        service, vid = engine.service, drifted[0]
        service.breaker = CircuitBreaker()
        key = f"{vid}:lifecycle"
        for _ in range(service.breaker.failure_threshold):
            service.breaker.record_failure(key)
        entry = controller.evaluate_vehicle(vid)
        assert entry["outcome"] == "skipped"
        assert entry["detail"] == "training breaker open"
        assert controller.counters()["breaker_skips"] == 1

    def test_failed_training_leaves_champion_serving(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        service, vid = engine.service, drifted[0]
        champion = service._vehicles[vid].model
        version = service._vehicles[vid].model_version

        def boom(*args, **kwargs):
            raise RuntimeError("factory down")

        service._make_predictor = boom
        entry = controller.evaluate_vehicle(vid)
        assert entry["outcome"] == "failed"
        assert "challenger training failed" in entry["detail"]
        state = service._vehicles[vid]
        assert state.model is champion
        assert state.model_version == version
        assert service.predict(vid).model_version == version
        counters = controller.counters()
        assert counters["train_failures"] == 1
        assert counters["promotions"] == 0


class TestStatus:
    def test_status_is_json_safe_and_complete(self, drifted_stack):
        import json

        engine, controller, drifted = drifted_stack
        controller.run_once()
        status = controller.status()
        json.dumps(status)  # strict JSON: no NaN/inf anywhere
        assert set(status) == {
            "policy", "counters", "vehicles", "history", "log"
        }
        vid = drifted[0]
        assert status["vehicles"][vid]["category"] == "OLD"
        assert status["counters"]["promotions"] == len(drifted)
        assert any(e["action"] == "promote" for e in status["log"])


class TestFreshStacksStayQuiet:
    def test_undrifted_fleet_produces_no_candidates(self, tmp_path):
        engine, controller, _ = run_scenario(
            tmp_path / "models", n_drifted=0, drift_days=20
        )
        assert controller.candidates() == []
        assert controller.run_once() == []
