"""Unit tests for repro.lifecycle.policy."""

import pytest

from repro.lifecycle import PromotionPolicy
from repro.lifecycle.shadow import ShadowReport


def report(**overrides) -> ShadowReport:
    values = dict(
        vehicle_id="v1",
        n_samples=20,
        champion_mae=3.0,
        challenger_mae=1.0,
        champion_worst=5.0,
        challenger_worst=3.0,
        win_rate=0.9,
    )
    values.update(overrides)
    return ShadowReport(**values)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_shadow_samples": 0},
            {"min_improvement_days": -0.1},
            {"min_relative_improvement": 1.0},
            {"min_relative_improvement": -0.2},
            {"allowed_strategies": ()},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            PromotionPolicy(**kwargs)

    def test_required_improvement_is_max_of_abs_and_relative(self):
        policy = PromotionPolicy(
            min_improvement_days=0.25, min_relative_improvement=0.10
        )
        assert policy.required_improvement(1.0) == pytest.approx(0.25)
        assert policy.required_improvement(10.0) == pytest.approx(1.0)


class TestGates:
    def test_promotes_clear_winner(self):
        decision = PromotionPolicy().decide(report())
        assert decision.promote
        assert "improvement" in decision.reason
        assert decision.as_dict()["report"]["n_samples"] == 20

    def test_strategy_guardrail_first(self):
        decision = PromotionPolicy().decide(report(), strategy="unified")
        assert not decision.promote
        assert "strategy guardrail" in decision.reason

    def test_insufficient_samples(self):
        decision = PromotionPolicy(min_shadow_samples=8).decide(
            report(n_samples=3)
        )
        assert not decision.promote
        assert "insufficient shadow samples" in decision.reason

    def test_absolute_improvement_gate(self):
        decision = PromotionPolicy(
            min_improvement_days=0.5, min_relative_improvement=0.0
        ).decide(report(champion_mae=1.0, challenger_mae=0.8))
        assert not decision.promote
        assert "below required" in decision.reason

    def test_relative_improvement_scales_with_champion_error(self):
        policy = PromotionPolicy(
            min_improvement_days=0.1, min_relative_improvement=0.10
        )
        # 0.5d improvement on a 10d champion is below the 1d relative bar.
        decision = policy.decide(
            report(champion_mae=10.0, challenger_mae=9.5)
        )
        assert not decision.promote

    def test_nan_improvement_rejected(self):
        decision = PromotionPolicy(min_shadow_samples=1).decide(
            report(champion_mae=float("nan"), challenger_mae=float("nan"))
        )
        assert not decision.promote

    def test_worst_case_regression_guardrail(self):
        policy = PromotionPolicy(max_worst_regression_days=1.0)
        decision = policy.decide(
            report(champion_worst=2.0, challenger_worst=4.0)
        )
        assert not decision.promote
        assert "worst-case regression" in decision.reason
        # Within the allowance the same challenger promotes.
        assert policy.decide(
            report(champion_worst=2.0, challenger_worst=2.5)
        ).promote
