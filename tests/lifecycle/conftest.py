"""Shared scenario builder for the lifecycle suite.

``drifted_stack`` replays the drill regime in miniature: warm a small
fleet until per-vehicle champions are trained and frozen
(``retrain_on_cycle=False``), then shift part of the fleet's usage rate
so the stale champions degrade — the state every lifecycle test starts
from.
"""

import numpy as np
import pytest

from repro.lifecycle.drill import _build_stack, _daily_usage


def run_scenario(
    store_dir,
    *,
    n_vehicles=4,
    n_drifted=1,
    warm_days=70,
    drift_days=45,
    seed=0,
    drift_factor=2.0,
):
    engine, controller = _build_stack(store_dir=str(store_dir))
    rng = np.random.default_rng(seed)
    ids = [f"lc{i:02d}" for i in range(n_vehicles)]
    drifted = set(ids[:n_drifted])
    engine.register_fleet(ids)
    rates = dict(zip(ids, rng.uniform(15_000.0, 21_000.0, size=n_vehicles)))
    day = 0

    def one_day(drifting: bool) -> None:
        nonlocal day
        engine.ingest_day(
            {
                vid: _daily_usage(
                    rng,
                    rates[vid]
                    * (drift_factor if drifting and vid in drifted else 1.0),
                )
                for vid in ids
            },
            day=day,
        )
        if day >= 15:
            engine.predict_all()
        day += 1

    for _ in range(warm_days):
        one_day(False)
    for _ in range(drift_days):
        one_day(True)
    return engine, controller, sorted(drifted)


@pytest.fixture
def drifted_stack(tmp_path):
    """(engine, controller, drifted ids) after warm + drift phases."""
    return run_scenario(tmp_path / "models")
