"""RollbackManager: versioned revert, pin/unpin, quarantine."""

import numpy as np
import pytest

from repro.lifecycle.drill import _build_stack

PROBE = np.array([[100_000.0]])


@pytest.fixture
def promoted_stack(drifted_stack):
    """drifted_stack after one sweep: drifted[0] serves v2 over a v1 prior."""
    engine, controller, drifted = drifted_stack
    entries = controller.run_once()
    assert all(e["outcome"] == "promoted" for e in entries)
    return engine, controller, drifted[0]


def stored_prediction(service, vid, version):
    artifact = service.store.load(f"{vid}.per-vehicle", version)
    return artifact.predictor.predict(PROBE)


class TestRollback:
    def test_rollback_restores_prior_version_bit_identically(
        self, promoted_stack
    ):
        engine, controller, vid = promoted_stack
        service = engine.service
        assert service._vehicles[vid].model_version == 2
        event = controller.rollback(vid)
        assert event["action"] == "rollback"
        assert event["vehicle_id"] == vid
        state = service._vehicles[vid]
        assert state.model_version == 1
        np.testing.assert_array_equal(
            state.model.predict(PROBE), stored_prediction(service, vid, 1)
        )
        assert service.predict(vid).model_version == 1

    def test_rollback_leaves_vehicle_pinned(self, promoted_stack):
        engine, controller, vid = promoted_stack
        controller.rollback(vid)
        state = engine.service._vehicles[vid]
        assert state.pinned_version == 1
        # Pinned vehicles never re-enter the candidate pool.
        assert vid not in [v for v, _ in controller.candidates()]

    def test_explicit_version_rollback(self, promoted_stack):
        engine, controller, vid = promoted_stack
        controller.rollback(vid, 1)
        assert engine.service._vehicles[vid].model_version == 1

    def test_rollback_without_prior_version_raises(self, drifted_stack):
        engine, controller, drifted = drifted_stack
        with pytest.raises(ValueError, match="No prior stored version"):
            controller.rollback(drifted[0])  # only v1 exists

    def test_rollback_without_store_raises(self, tmp_path):
        engine, controller = _build_stack(store_dir=None)
        engine.register_fleet(["v1"])
        with pytest.raises(ValueError, match="ModelStore"):
            controller.rollback("v1")

    def test_quarantine_current_parks_replaced_version(self, promoted_stack):
        engine, controller, vid = promoted_stack
        store, key = engine.service.store, f"{vid}.per-vehicle"
        controller.rollback(vid, quarantine_current=True)
        assert 2 in store.quarantined(key)
        assert 2 not in store.versions(key)
        assert controller.counters()["quarantines"] == 1


class TestPin:
    def test_pin_serves_exact_version_and_unpin_releases(self, promoted_stack):
        engine, controller, vid = promoted_stack
        service = engine.service
        controller.pin(vid, 1)
        state = service._vehicles[vid]
        assert state.pinned_version == 1
        assert state.model_version == 1
        np.testing.assert_array_equal(
            state.model.predict(PROBE), stored_prediction(service, vid, 1)
        )
        controller.unpin(vid)
        assert service._vehicles[vid].pinned_version is None
        counters = controller.counters()
        assert counters["pins"] == 1 and counters["unpins"] == 1

    def test_pin_missing_version_raises(self, promoted_stack):
        engine, controller, vid = promoted_stack
        with pytest.raises(KeyError):
            controller.pin(vid, 99)

    def test_pinned_version_survives_store_prune(self, promoted_stack):
        engine, controller, vid = promoted_stack
        store, key = engine.service.store, f"{vid}.per-vehicle"
        controller.pin(vid, 1)
        store.prune(key, keep_last=1, keep={1})
        assert 1 in store.versions(key)
