"""Unit tests for repro.lifecycle.shadow."""

import math

import numpy as np
import pytest

from repro.lifecycle import ShadowEvaluator, ShadowReport
from repro.serving import MaintenancePredictionService

T_V = 200_000.0


class ConstPredictor:
    """Predicts one constant for every row."""

    def __init__(self, value: float):
        self.value = value

    def predict(self, X):
        return np.full(np.asarray(X).shape[0], self.value)


def build_service(n_days=40, rate=20_000.0) -> MaintenancePredictionService:
    service = MaintenancePredictionService(t_v=T_V, window=0, algorithm="LR")
    service.register_vehicle("v1")
    service.ingest_series("v1", np.full(n_days, rate))
    return service


def resolved_truth(service, window_days):
    series = service.series("v1")
    truth = [
        float(series.days_to_maintenance[t])
        for t in range(service.window, series.n_days)
        if np.isfinite(series.days_to_maintenance[t])
    ]
    return truth[-window_days:]


class TestShadowReport:
    def test_improvement_is_champion_minus_challenger(self):
        report = ShadowReport("v1", 10, 3.0, 1.0, 5.0, 2.0, 0.9)
        assert report.improvement == pytest.approx(2.0)
        assert report.as_dict()["improvement"] == pytest.approx(2.0)

    def test_as_dict_round_trips_fields(self):
        report = ShadowReport("v1", 4, 1.5, 1.0, 2.0, 1.5, 0.75)
        payload = report.as_dict()
        assert payload["vehicle_id"] == "v1"
        assert payload["n_samples"] == 4
        assert payload["win_rate"] == pytest.approx(0.75)


class TestShadowEvaluator:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_days"):
            ShadowEvaluator(window_days=0)

    def test_no_resolved_days_reports_zero_samples(self):
        service = MaintenancePredictionService(t_v=T_V, window=0)
        service.register_vehicle("v1")
        service.ingest_series("v1", np.full(3, 20_000.0))  # cycle incomplete
        report = ShadowEvaluator().evaluate(
            service, "v1", ConstPredictor(1.0), ConstPredictor(2.0)
        )
        assert report.n_samples == 0
        assert math.isnan(report.champion_mae)

    def test_errors_match_manual_computation(self):
        service = build_service()
        evaluator = ShadowEvaluator(window_days=10)
        champion, challenger = ConstPredictor(0.0), ConstPredictor(5.0)
        report = evaluator.evaluate(service, "v1", champion, challenger)
        truth = resolved_truth(service, 10)
        assert report.n_samples == len(truth) > 0
        assert report.champion_mae == pytest.approx(
            np.mean(np.abs(np.asarray(truth)))
        )
        assert report.challenger_mae == pytest.approx(
            np.mean(np.abs(np.asarray(truth) - 5.0))
        )
        assert report.champion_worst == pytest.approx(max(abs(t) for t in truth))

    def test_window_caps_samples_to_newest(self):
        service = build_service()
        full = ShadowEvaluator(window_days=500).evaluate(
            service, "v1", ConstPredictor(0.0), ConstPredictor(0.0)
        )
        capped = ShadowEvaluator(window_days=3).evaluate(
            service, "v1", ConstPredictor(0.0), ConstPredictor(0.0)
        )
        assert capped.n_samples == 3 < full.n_samples

    def test_predictions_clamped_at_zero(self):
        service = build_service()
        report = ShadowEvaluator().evaluate(
            service, "v1", ConstPredictor(-100.0), ConstPredictor(0.0)
        )
        # A -100 predictor clamps to 0 == exactly the 0-predictor.
        assert report.champion_mae == pytest.approx(report.challenger_mae)
        assert report.win_rate == pytest.approx(0.5)  # all ties

    def test_evaluation_never_mutates_serving_state(self):
        service = build_service()
        before = service.state_dict()
        ShadowEvaluator().evaluate(
            service, "v1", ConstPredictor(1.0), ConstPredictor(2.0)
        )
        assert service.state_dict() == before
