"""Unit tests for repro.learn.tree (CART)."""

import numpy as np
import pytest

from repro.learn.exceptions import NotFittedError
from repro.learn.metrics import r2_score
from repro.learn.tree import DecisionTreeRegressor, export_text


class TestBasicFitting:
    def test_perfectly_separable_step(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([5.0, 5.0, 5.0, 9.0, 9.0, 9.0])
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.array_equal(tree.predict(X), y)
        assert tree.get_n_leaves() == 2

    def test_constant_target_single_leaf(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = np.full(10, 7.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.get_n_leaves() == 1
        assert np.all(tree.predict(X) == 7.0)

    def test_deep_tree_interpolates_training_data(self, rng):
        X = rng.uniform(-1, 1, size=(100, 2))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor().fit(X, y)
        # Unconstrained CART memorizes distinct-feature training sets.
        assert r2_score(y, tree.predict(X)) > 0.999

    def test_nonlinear_signal(self, regression_data):
        X_train, y_train, X_test, y_test = regression_data
        tree = DecisionTreeRegressor(max_depth=8).fit(X_train, y_train)
        assert r2_score(y_test, tree.predict(X_test)) > 0.8


class TestPruningControls:
    def test_max_depth_respected(self, rng):
        X = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.get_depth() <= 3

    def test_min_samples_leaf_respected(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaf_sizes = tree.tree_.n_node_samples[
            tree.tree_.children_left == -1
        ]
        assert leaf_sizes.min() >= 10

    def test_min_samples_split_respected(self, rng):
        X = rng.normal(size=(50, 1))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(min_samples_split=40).fit(X, y)
        internal = tree.tree_.children_left != -1
        assert tree.tree_.n_node_samples[internal].min() >= 40

    def test_min_impurity_decrease_blocks_weak_splits(self, rng):
        X = rng.normal(size=(100, 1))
        y = rng.normal(0, 0.01, size=100)  # almost no structure
        strict = DecisionTreeRegressor(min_impurity_decrease=1.0).fit(X, y)
        assert strict.get_n_leaves() == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": 0},
            {"min_samples_split": 1},
            {"min_samples_leaf": 0},
            {"min_impurity_decrease": -0.1},
            {"max_features": 0},
            {"max_features": 2.0},
            {"max_features": "cube"},
        ],
    )
    def test_invalid_hyperparams(self, rng, kwargs):
        X = rng.normal(size=(20, 3))
        y = rng.normal(size=20)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(**kwargs).fit(X, y)


class TestMaxFeatures:
    @pytest.mark.parametrize("mf, expected", [("sqrt", 3), ("log2", 3), (0.5, 5), (4, 4)])
    def test_resolution(self, mf, expected):
        tree = DecisionTreeRegressor(max_features=mf)
        assert tree._resolve_max_features(10) == expected

    def test_subsampled_trees_differ(self, rng):
        X = rng.normal(size=(200, 6))
        y = X @ rng.normal(size=6)
        # Depth-limited trees can't memorize, so the random feature
        # subsets picked at each split show up in the predictions.
        t1 = DecisionTreeRegressor(
            max_features=2, max_depth=3, random_state=1
        ).fit(X, y)
        t2 = DecisionTreeRegressor(
            max_features=2, max_depth=3, random_state=2
        ).fit(X, y)
        assert not np.array_equal(t1.predict(X), t2.predict(X))


class TestSampleIndices:
    def test_fit_on_subset_matches_explicit_subset(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0] * 2
        idx = np.arange(0, 100, 2)
        via_indices = DecisionTreeRegressor(random_state=0).fit(
            X, y, sample_indices=idx
        )
        via_copy = DecisionTreeRegressor(random_state=0).fit(X[idx], y[idx])
        probe = rng.normal(size=(20, 2))
        assert np.allclose(via_indices.predict(probe), via_copy.predict(probe))

    def test_empty_indices_rejected(self, rng):
        X = rng.normal(size=(10, 1))
        y = rng.normal(size=10)
        with pytest.raises(ValueError, match="empty"):
            DecisionTreeRegressor().fit(X, y, sample_indices=np.array([], dtype=int))


class TestTreeIntrospection:
    def test_feature_importances_sum_to_one(self, regression_data):
        X_train, y_train, _, _ = regression_data
        tree = DecisionTreeRegressor(max_depth=6).fit(X_train, y_train)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_important_feature_identified(self, rng):
        X = rng.normal(size=(300, 3))
        y = 10 * X[:, 1]  # only feature 1 matters
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1

    def test_apply_returns_leaves(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        tree = DecisionTreeRegressor(max_depth=4).fit(X_train, y_train)
        leaves = tree.apply(X_test)
        is_leaf = tree.tree_.children_left[leaves] == -1
        assert is_leaf.all()

    def test_export_text_contains_thresholds(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeRegressor().fit(X, y)
        text = export_text(tree, feature_names=["usage"])
        assert "usage <=" in text
        assert "value:" in text

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[0.0]])

    def test_predict_feature_mismatch(self, rng):
        X = rng.normal(size=(20, 2))
        tree = DecisionTreeRegressor().fit(X, rng.normal(size=20))
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.zeros((3, 5)))


class TestDeterminism:
    def test_same_seed_same_tree(self, rng):
        X = rng.normal(size=(150, 4))
        y = rng.normal(size=150)
        a = DecisionTreeRegressor(max_features=2, random_state=42).fit(X, y)
        b = DecisionTreeRegressor(max_features=2, random_state=42).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
