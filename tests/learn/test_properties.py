"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.learn.boosting import BinMapper
from repro.learn.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
)
from repro.learn.model_selection import KFold, TimeSeriesSplit
from repro.learn.preprocessing import MinMaxScaler, StandardScaler
from repro.learn.tree import DecisionTreeRegressor

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vectors(min_size=2, max_size=40):
    return arrays(
        dtype=np.float64,
        shape=st.integers(min_size, max_size),
        elements=finite_floats,
    )


class TestMetricProperties:
    @given(vectors())
    def test_zero_error_on_identity(self, y):
        assert mean_squared_error(y, y) == 0.0
        assert mean_absolute_error(y, y) == 0.0

    @given(vectors(), st.floats(min_value=0.1, max_value=100))
    def test_mae_of_constant_offset_is_the_offset(self, y, offset):
        np.testing.assert_allclose(
            mean_absolute_error(y, y + offset), offset, rtol=1e-6, atol=1e-6
        )

    @given(vectors())
    def test_mse_nonnegative(self, y):
        noise = np.linspace(-1, 1, y.size)
        assert mean_squared_error(y, y + noise) >= 0.0

    @given(vectors(min_size=3))
    def test_r2_at_most_one(self, y):
        pred = y + np.linspace(-0.5, 0.5, y.size)
        assert r2_score(y, pred) <= 1.0 + 1e-12


class TestScalerProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=finite_floats,
        )
    )
    def test_minmax_output_in_range(self, X):
        out = MinMaxScaler().fit_transform(X)
        assert out.min() >= -1e-9
        assert out.max() <= 1.0 + 1e-9

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=st.floats(min_value=-1e4, max_value=1e4),
        )
    )
    def test_roundtrip_inverse(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6)


class TestSplitterProperties:
    @given(st.integers(6, 100), st.integers(2, 5))
    def test_kfold_partitions(self, n, k):
        folds = list(KFold(n_splits=k).split(np.zeros(n)))
        assert len(folds) == k
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(n))

    @given(st.integers(10, 80), st.integers(2, 4))
    def test_tss_no_future_leakage(self, n, k):
        for train, test in TimeSeriesSplit(n_splits=k).split(np.zeros(n)):
            assert train.max() < test.min()


class TestTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(5, 40), st.integers(1, 3)),
            elements=st.floats(min_value=-100, max_value=100),
        ),
        st.integers(1, 4),
    )
    def test_predictions_within_target_range(self, X, depth):
        y = X[:, 0] * 2.0 + 1.0
        tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
        pred = tree.predict(X)
        # Leaf values are means of training targets: never extrapolate.
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 30), st.integers(1, 3)),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_depth_never_exceeds_limit(self, X):
        y = np.arange(X.shape[0], dtype=float)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.get_depth() <= 2


class TestBinMapperProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 200), st.integers(1, 3)),
            elements=finite_floats,
        )
    )
    def test_binning_is_order_preserving(self, X):
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X)
        for j in range(X.shape[1]):
            order = np.argsort(X[:, j], kind="stable")
            diffs = np.diff(binned[order, j].astype(int))
            assert (diffs >= 0).all()
