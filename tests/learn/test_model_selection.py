"""Unit tests for repro.learn.model_selection."""

import numpy as np
import pytest

from repro.learn.linear import LinearRegression, Ridge
from repro.learn.metrics import mean_absolute_error
from repro.learn.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    TimeSeriesSplit,
    cross_val_score,
    make_scorer,
    neg_mean_absolute_error_scorer,
    temporal_train_test_split,
    train_test_split,
)
from repro.learn.tree import DecisionTreeRegressor


class TestKFold:
    def test_covers_all_samples_exactly_once(self):
        folds = list(KFold(n_splits=4).split(np.zeros(22)))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(np.zeros(10)):
            assert not set(train) & set(test)

    def test_shuffle_changes_order_deterministically(self):
        a = list(KFold(3, shuffle=True, random_state=1).split(np.zeros(9)))
        b = list(KFold(3, shuffle=True, random_state=1).split(np.zeros(9)))
        c = list(KFold(3, shuffle=True, random_state=2).split(np.zeros(9)))
        assert np.array_equal(a[0][1], b[0][1])
        assert not all(
            np.array_equal(x[1], y[1]) for x, y in zip(a, c)
        )

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="split"):
            list(KFold(n_splits=5).split(np.zeros(3)))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_uneven_fold_sizes(self):
        sizes = [len(test) for _, test in KFold(3).split(np.zeros(10))]
        assert sorted(sizes) == [3, 3, 4]


class TestTimeSeriesSplit:
    def test_train_always_precedes_test(self):
        for train, test in TimeSeriesSplit(n_splits=4).split(np.zeros(50)):
            assert train.max() < test.min()

    def test_train_grows(self):
        lengths = [
            len(train)
            for train, _ in TimeSeriesSplit(n_splits=4).split(np.zeros(50))
        ]
        assert lengths == sorted(lengths)
        assert lengths[0] > 0

    def test_max_train_size(self):
        for train, _ in TimeSeriesSplit(
            n_splits=3, max_train_size=5
        ).split(np.zeros(40)):
            assert len(train) <= 5

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(TimeSeriesSplit(n_splits=5).split(np.zeros(4)))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.2, random_state=0)
        assert len(X_test) == 20
        assert len(X_train) == 80

    def test_multiple_arrays_stay_aligned(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50) * 10
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.3, random_state=1
        )
        assert np.array_equal(X_train.ravel() * 10, y_train)
        assert np.array_equal(X_test.ravel() * 10, y_test)

    def test_no_shuffle_keeps_order(self):
        X = np.arange(10).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.2, shuffle=False)
        assert np.array_equal(X_test.ravel(), [0, 1])

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), test_size=1.5)


class TestTemporalSplit:
    def test_seventy_thirty(self):
        X = np.arange(100)
        X_train, X_test = temporal_train_test_split(X, train_fraction=0.7)
        assert len(X_train) == 70
        assert np.array_equal(X_train, np.arange(70))

    def test_chronological_order_preserved(self):
        X = np.arange(10)
        X_train, X_test = temporal_train_test_split(X, train_fraction=0.5)
        assert X_train.max() < X_test.min()

    def test_degenerate_fraction_clamped(self):
        X = np.arange(3)
        X_train, X_test = temporal_train_test_split(X, train_fraction=0.99)
        assert len(X_test) >= 1


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y"]})
        combos = list(grid)
        assert len(combos) == 4
        assert {"a": 1, "b": "x"} in combos

    def test_len(self):
        assert len(ParameterGrid({"a": [1, 2, 3], "b": [1, 2]})) == 6

    def test_list_of_grids(self):
        grid = ParameterGrid([{"a": [1]}, {"b": [2, 3]}])
        assert len(grid) == 3

    def test_empty_grid_yields_empty_dict(self):
        assert list(ParameterGrid({})) == [{}]

    def test_string_values_rejected(self):
        with pytest.raises(ValueError, match="iterable"):
            ParameterGrid({"a": "abc"})


class TestScorers:
    def test_make_scorer_greater_is_better(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        scorer = make_scorer(mean_absolute_error, greater_is_better=False)
        assert scorer(model, X, y) == pytest.approx(0.0, abs=1e-6)
        assert scorer(model, X, y + 1) == pytest.approx(-1.0, abs=1e-6)

    def test_builtin_neg_mae_scorer(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        assert neg_mean_absolute_error_scorer(model, X, y) <= 0.0


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, regression_data):
        X_train, y_train, _, _ = regression_data
        scores = cross_val_score(
            DecisionTreeRegressor(max_depth=4, random_state=0),
            X_train,
            y_train,
            cv=4,
        )
        assert scores.shape == (4,)

    def test_does_not_mutate_estimator(self, regression_data):
        X_train, y_train, _, _ = regression_data
        template = LinearRegression()
        cross_val_score(template, X_train, y_train, cv=3)
        assert not hasattr(template, "coef_")


class TestGridSearchCV:
    def test_finds_obviously_better_param(self, regression_data):
        X_train, y_train, _, _ = regression_data
        search = GridSearchCV(
            DecisionTreeRegressor(random_state=0),
            {"max_depth": [1, 8]},
            cv=3,
        ).fit(X_train, y_train)
        assert search.best_params_ == {"max_depth": 8}

    def test_refit_enables_predict(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        search = GridSearchCV(
            Ridge(), {"alpha": [0.1, 10.0]}, cv=3
        ).fit(X_train, y_train)
        assert search.predict(X_test).shape == (len(X_test),)

    def test_no_refit_blocks_predict(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        search = GridSearchCV(
            Ridge(), {"alpha": [1.0]}, cv=3, refit=False
        ).fit(X_train, y_train)
        with pytest.raises(AttributeError):
            search.predict(X_test)

    def test_cv_results_structure(self, regression_data):
        X_train, y_train, _, _ = regression_data
        search = GridSearchCV(
            Ridge(), {"alpha": [0.1, 1.0, 10.0]}, cv=3
        ).fit(X_train, y_train)
        assert len(search.cv_results_["params"]) == 3
        assert search.cv_results_["mean_test_score"].shape == (3,)
        assert search.best_index_ == int(
            np.argmax(search.cv_results_["mean_test_score"])
        )

    def test_custom_scorer_used(self, regression_data):
        X_train, y_train, _, _ = regression_data
        search = GridSearchCV(
            DecisionTreeRegressor(random_state=0),
            {"max_depth": [1, 6]},
            cv=3,
            scoring=neg_mean_absolute_error_scorer,
        ).fit(X_train, y_train)
        assert search.best_score_ <= 0.0
        assert search.best_params_["max_depth"] == 6

    def test_empty_grid_rejected(self, regression_data):
        X_train, y_train, _, _ = regression_data
        with pytest.raises(ValueError, match="empty"):
            GridSearchCV(Ridge(), [], cv=3).fit(X_train, y_train)

    def test_time_series_cv_accepted(self, regression_data):
        X_train, y_train, _, _ = regression_data
        search = GridSearchCV(
            Ridge(), {"alpha": [0.1, 1.0]}, cv=TimeSeriesSplit(n_splits=3)
        ).fit(X_train, y_train)
        assert "alpha" in search.best_params_


class TestParameterSampler:
    def test_sample_count(self):
        from repro.learn.model_selection import ParameterSampler

        sampler = ParameterSampler({"a": [1, 2, 3]}, n_iter=7, random_state=0)
        assert len(list(sampler)) == 7
        assert len(sampler) == 7

    def test_values_come_from_lists(self):
        from repro.learn.model_selection import ParameterSampler

        sampler = ParameterSampler(
            {"a": [1, 2], "b": ["x"]}, n_iter=20, random_state=0
        )
        for params in sampler:
            assert params["a"] in (1, 2)
            assert params["b"] == "x"

    def test_scipy_distribution_supported(self):
        from scipy import stats

        from repro.learn.model_selection import ParameterSampler

        sampler = ParameterSampler(
            {"depth": stats.randint(3, 51)}, n_iter=50, random_state=0
        )
        depths = [p["depth"] for p in sampler]
        assert all(3 <= d <= 50 for d in depths)
        assert len(set(depths)) > 5

    def test_deterministic_for_seed(self):
        from repro.learn.model_selection import ParameterSampler

        a = list(ParameterSampler({"a": [1, 2, 3]}, 10, random_state=4))
        b = list(ParameterSampler({"a": [1, 2, 3]}, 10, random_state=4))
        assert a == b

    def test_invalid_inputs(self):
        from repro.learn.model_selection import ParameterSampler

        with pytest.raises(ValueError):
            ParameterSampler({}, n_iter=5)
        with pytest.raises(ValueError):
            ParameterSampler({"a": [1]}, n_iter=0)
        with pytest.raises(ValueError):
            ParameterSampler({"a": "abc"}, n_iter=5)


class TestRandomizedSearchCV:
    def test_finds_good_depth(self, regression_data):
        from repro.learn.model_selection import RandomizedSearchCV

        X_train, y_train, X_test, y_test = regression_data
        search = RandomizedSearchCV(
            DecisionTreeRegressor(random_state=0),
            {"max_depth": [1, 2, 8, 9, 10]},
            n_iter=5,
            cv=3,
            random_state=0,
        ).fit(X_train, y_train)
        assert search.best_params_["max_depth"] >= 8
        assert search.predict(X_test).shape == (len(X_test),)

    def test_evaluates_n_iter_candidates(self, regression_data):
        from repro.learn.model_selection import RandomizedSearchCV

        X_train, y_train, _, _ = regression_data
        search = RandomizedSearchCV(
            Ridge(),
            {"alpha": [0.01, 0.1, 1.0, 10.0, 100.0]},
            n_iter=4,
            cv=3,
            random_state=1,
        ).fit(X_train, y_train)
        assert len(search.cv_results_["params"]) == 4

    def test_clone_roundtrip(self):
        from repro.learn.base import clone
        from repro.learn.model_selection import RandomizedSearchCV

        search = RandomizedSearchCV(
            Ridge(), {"alpha": [1.0]}, n_iter=2, random_state=3
        )
        fresh = clone(search)
        assert fresh.n_iter == 2
        assert fresh.random_state == 3
