"""Unit tests for repro.learn.svm (LinearSVR)."""

import numpy as np
import pytest

from repro.learn.metrics import r2_score
from repro.learn.svm import LinearSVR


class TestLinearSVR:
    def test_fits_linear_relationship(self, rng):
        X = rng.normal(size=(200, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        model = LinearSVR(C=100.0, epsilon=0.0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_epsilon_tube_ignores_small_noise(self, rng):
        X = rng.normal(size=(300, 1))
        noise = rng.uniform(-0.4, 0.4, 300)
        y = 3.0 * X[:, 0] + noise
        model = LinearSVR(C=10.0, epsilon=0.5).fit(X, y)
        # Residuals inside the tube cost nothing: slope stays near 3.
        assert model.coef_[0] == pytest.approx(3.0, abs=0.15)

    def test_small_C_means_heavy_regularization(self, rng):
        X = rng.normal(size=(100, 2))
        y = X @ np.array([10.0, -8.0])
        weak = LinearSVR(C=1e-6, epsilon=0.0).fit(X, y)
        strong = LinearSVR(C=100.0, epsilon=0.0).fit(X, y)
        assert np.linalg.norm(weak.coef_) < np.linalg.norm(strong.coef_)

    def test_l1_loss_variant_converges(self, rng):
        X = rng.normal(size=(150, 2))
        y = X @ np.array([1.0, 2.0]) + 0.5
        model = LinearSVR(
            C=10.0, epsilon=0.1, loss="epsilon_insensitive"
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.98

    def test_l1_loss_robust_to_outliers(self, rng):
        X = rng.normal(size=(200, 1))
        y = 2.0 * X[:, 0]
        y[:5] += 100.0  # gross outliers
        l1 = LinearSVR(C=1.0, epsilon=0.0, loss="epsilon_insensitive").fit(X, y)
        l2 = LinearSVR(
            C=1.0, epsilon=0.0, loss="squared_epsilon_insensitive"
        ).fit(X, y)
        # The L1 tube bends less toward the outliers than the squared loss.
        assert abs(l1.coef_[0] - 2.0) < abs(l2.coef_[0] - 2.0)

    def test_no_intercept(self, rng):
        X = rng.normal(size=(100, 1))
        y = 5.0 * X[:, 0]
        model = LinearSVR(C=100.0, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_reports_iterations_and_convergence(self, rng):
        X = rng.normal(size=(50, 2))
        y = X[:, 0]
        model = LinearSVR(C=1.0).fit(X, y)
        assert model.n_iter_ >= 1
        assert isinstance(model.converged_, bool)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"C": 0.0}, "C must be positive"),
            ({"C": -1.0}, "C must be positive"),
            ({"epsilon": -0.5}, "epsilon"),
            ({"loss": "hinge"}, "loss must be one of"),
        ],
    )
    def test_invalid_hyperparams(self, rng, kwargs, match):
        X = rng.normal(size=(10, 1))
        y = X[:, 0]
        with pytest.raises(ValueError, match=match):
            LinearSVR(**kwargs).fit(X, y)
