"""Bit-identity contract of the compiled inference kernels.

Every assertion here is *exact* (``tobytes`` equality, never
``allclose``): the fused level-wise kernels replace the per-tree Python
loops on the serving hot path, and the serial-equivalence contract of
the whole serving stack rests on their outputs being bitwise the
reference predictions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictors import BaselinePredictor, RegressionPredictor
from repro.learn.boosting import BinMapper, HistGradientBoostingRegressor
from repro.learn.compiled import (
    CompileError,
    compile_model,
    ensemble_kernel,
    gbdt_kernel,
    reference_predict,
    try_compile,
)
from repro.learn.forest import RandomForestRegressor
from repro.learn.linear import LinearRegression, Ridge
from repro.learn.pipeline import make_pipeline
from repro.learn.preprocessing import StandardScaler
from repro.learn.svm import LinearSVR


def _dataset(seed: int, n: int, f: int, *, constant_x=False, constant_y=False):
    rng = np.random.default_rng(seed)
    X = np.zeros((n, f)) if constant_x else rng.normal(size=(n, f))
    if constant_y:
        y = np.full(n, 3.5)
    else:
        y = X[:, 0] * 2.0 + rng.normal(size=n)
    return X, y


def _probe(seed: int, rows: int, f: int) -> np.ndarray:
    return np.random.default_rng(seed + 1).normal(size=(rows, f))


def assert_bit_identical(a: np.ndarray, b: np.ndarray) -> None:
    assert a.dtype == b.dtype and a.shape == b.shape
    assert a.tobytes() == b.tobytes()


ESTIMATOR_KEYS = ("tree", "forest", "gbdt", "linear", "ridge", "svr-pipeline")


def _make_estimator(key: str, depth: int):
    if key == "tree":
        from repro.learn.tree import DecisionTreeRegressor

        return DecisionTreeRegressor(max_depth=depth, random_state=0)
    if key == "forest":
        return RandomForestRegressor(
            n_estimators=7, max_depth=depth, random_state=0
        )
    if key == "gbdt":
        return HistGradientBoostingRegressor(
            max_iter=8, max_depth=depth, random_state=0
        )
    if key == "linear":
        return LinearRegression()
    if key == "ridge":
        return Ridge(alpha=0.5)
    return make_pipeline(StandardScaler(), LinearSVR(max_iter=50))


class TestCompiledVsReference:
    @settings(max_examples=40, deadline=None)
    @given(
        key=st.sampled_from(ESTIMATOR_KEYS),
        depth=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=6, max_value=60),
        f=st.integers(min_value=1, max_value=5),
    )
    def test_compiled_matches_reference_bitwise(self, key, depth, seed, n, f):
        X, y = _dataset(seed, n, f)
        model = _make_estimator(key, depth).fit(X, y)
        compiled = compile_model(model)
        for probe in (X, _probe(seed, 17, f), X[:1]):
            assert_bit_identical(
                compiled.predict(np.asarray(probe, dtype=np.float64)),
                reference_predict(model, probe),
            )

    @settings(max_examples=15, deadline=None)
    @given(
        key=st.sampled_from(("tree", "forest", "gbdt")),
        seed=st.integers(min_value=0, max_value=20),
        constant_x=st.booleans(),
        constant_y=st.booleans(),
    )
    def test_degenerate_trees(self, key, seed, constant_x, constant_y):
        # Constant features or a constant target produce single-leaf
        # trees; the leaf self-loop encoding must still gather the
        # right values at depth 0.
        X, y = _dataset(
            seed, 20, 3, constant_x=constant_x, constant_y=constant_y
        )
        model = _make_estimator(key, 5).fit(X, y)
        probe = _probe(seed, 9, 3)
        assert_bit_identical(
            compile_model(model).predict(probe),
            reference_predict(model, probe),
        )

    def test_fused_estimator_predict_matches_prior_loop(self):
        # The estimators' own predict() now routes through the kernel;
        # it must equal the old per-tree accumulation op for op.
        X, y = _dataset(3, 80, 4)
        probe = _probe(3, 33, 4)
        rf = RandomForestRegressor(
            n_estimators=20, max_depth=9, random_state=0
        ).fit(X, y)
        assert_bit_identical(rf.predict(probe), reference_predict(rf, probe))
        gb = HistGradientBoostingRegressor(max_iter=25, random_state=0).fit(
            X, y
        )
        assert_bit_identical(gb.predict(probe), reference_predict(gb, probe))

    def test_batch_rows_equal_single_rows(self):
        # batch_safe kernels must be bitwise row-separable: stacking
        # many vehicles into one matrix cannot change any row.
        X, y = _dataset(7, 90, 5)
        probe = _probe(7, 41, 5)
        for key in ("tree", "forest", "gbdt"):
            model = _make_estimator(key, 12).fit(X, y)
            compiled = compile_model(model)
            assert compiled.batch_safe
            batched = compiled.predict(probe)
            singles = np.concatenate(
                [compiled.predict(probe[i : i + 1]) for i in range(len(probe))]
            )
            assert_bit_identical(batched, singles)

    def test_linear_kernels_are_not_batch_safe(self):
        # X @ coef reduces through shape-dependent BLAS paths, so the
        # compiled linear kernel must refuse cross-vehicle stacking.
        X, y = _dataset(11, 50, 4)
        for key in ("linear", "ridge", "svr-pipeline"):
            model = _make_estimator(key, 1).fit(X, y)
            compiled = compile_model(model)
            assert not compiled.batch_safe
            probe = _probe(11, 1, 4)
            assert_bit_identical(compiled.predict(probe), model.predict(probe))


class TestPredictQuantiles:
    def test_quantiles_from_fused_traversal_match_stacked_loop(self):
        X, y = _dataset(5, 70, 4)
        rf = RandomForestRegressor(
            n_estimators=15, max_depth=8, random_state=0
        ).fit(X, y)
        probe = _probe(5, 23, 4)
        quantiles = (0.1, 0.5, 0.9)
        per_tree = np.stack(
            [tree.predict(np.asarray(probe)) for tree in rf.estimators_],
            axis=0,
        )
        expected = np.quantile(per_tree, np.asarray(quantiles), axis=0).T
        assert_bit_identical(rf.predict_quantiles(probe, quantiles), expected)

    def test_quantile_validation_unchanged(self):
        X, y = _dataset(5, 30, 2)
        rf = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="quantiles"):
            rf.predict_quantiles(X, (0.1, 1.5))
        with pytest.raises(ValueError, match="features"):
            rf.predict_quantiles(X[:, :1], (0.1, 0.9))


class TestBinMapperFastTransform:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=40),
        n=st.integers(min_value=3, max_value=80),
        f=st.integers(min_value=1, max_value=6),
        max_bins=st.sampled_from((2, 3, 16, 255)),
    )
    def test_single_searchsorted_equals_per_feature_loop(
        self, seed, n, f, max_bins
    ):
        rng = np.random.default_rng(seed)
        # Low-cardinality columns force duplicate cut values across
        # features and probe values exactly equal to cuts.
        X = np.round(rng.normal(size=(n, f)), 1)
        mapper = BinMapper(max_bins=max_bins).fit(X)
        probe = np.concatenate([X, np.round(rng.normal(size=(9, f)), 1)])
        expected = np.empty(probe.shape, dtype=np.uint8)
        for j, cuts in enumerate(mapper.bin_edges_):
            expected[:, j] = np.searchsorted(cuts, probe[:, j], side="left")
        assert np.array_equal(mapper.transform(probe), expected)
        assert mapper.transform(probe).dtype == np.uint8

    def test_width_mismatch_still_raises(self):
        mapper = BinMapper().fit(np.random.default_rng(0).normal(size=(20, 3)))
        with pytest.raises(ValueError, match="features"):
            mapper.transform(np.zeros((2, 2)))

    def test_rank_tables_dropped_from_pickle(self):
        import pickle

        mapper = BinMapper().fit(np.random.default_rng(0).normal(size=(20, 3)))
        X = np.random.default_rng(1).normal(size=(5, 3))
        before = mapper.transform(X)
        assert hasattr(mapper, "_rank_cache")
        restored = pickle.loads(pickle.dumps(mapper))
        assert not hasattr(restored, "_rank_cache")
        assert np.array_equal(restored.transform(X), before)


class TestTrustedFastPath:
    def test_validate_false_matches_validate_true(self):
        X, y = _dataset(9, 60, 4)
        probe = _probe(9, 7, 4)
        for key in ESTIMATOR_KEYS:
            model = _make_estimator(key, 6).fit(X, y)
            assert getattr(model, "trusted_predict", False)
            assert_bit_identical(
                model.predict(probe, validate=False), model.predict(probe)
            )

    def test_public_validation_behavior_unchanged(self):
        X, y = _dataset(9, 30, 3)
        rf = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        with pytest.raises(Exception):
            rf.predict(np.array([[np.nan, 0.0, 0.0]]))
        with pytest.raises(ValueError, match="features"):
            rf.predict(X[:, :2])

    def test_predictor_wrappers_are_trusted(self):
        X, y = _dataset(13, 40, 3)
        predictor = RegressionPredictor(
            "RF", RandomForestRegressor(n_estimators=3, random_state=0)
        )
        assert predictor.trusted_predict
        assert BaselinePredictor.trusted_predict


class TestKernelCacheAndCompileErrors:
    def test_kernel_cached_until_refit(self):
        X, y = _dataset(2, 40, 3)
        rf = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        first = ensemble_kernel(rf)
        assert ensemble_kernel(rf) is first
        rf.fit(X, y)
        assert ensemble_kernel(rf) is not first
        gb = HistGradientBoostingRegressor(max_iter=4, random_state=0).fit(
            X, y
        )
        k = gbdt_kernel(gb)
        assert gbdt_kernel(gb) is k

    def test_unfitted_and_unsupported_raise_compile_error(self):
        with pytest.raises(CompileError, match="fit"):
            compile_model(RandomForestRegressor())
        with pytest.raises(CompileError, match="Cannot compile"):
            compile_model(object())
        assert try_compile(object()) is None
        assert try_compile(LinearRegression()) is None

    def test_compiled_regression_predictor_clips(self):
        X, y = _dataset(4, 40, 2)
        predictor = RegressionPredictor(
            "LR", LinearRegression(), clip_negative=True
        )

        class _DS:
            n_records = len(X)

        ds = _DS()
        ds.X, ds.y = X, y - 100.0  # force negative predictions
        predictor.fit(ds)
        probe = _probe(4, 11, 2)
        compiled = compile_model(predictor)
        assert_bit_identical(compiled.predict(probe), predictor.predict(probe))
        assert (compiled.predict(probe) >= 0.0).all()
