"""Unit tests for repro.learn.neural (MLPRegressor)."""

import numpy as np
import pytest

from repro.learn.base import clone
from repro.learn.exceptions import NotFittedError
from repro.learn.metrics import r2_score
from repro.learn.neural import MLPRegressor


class TestFitPredict:
    def test_learns_nonlinear_signal(self, regression_data):
        X_train, y_train, X_test, y_test = regression_data
        model = MLPRegressor(
            hidden_layer_sizes=(64, 32), max_iter=200, random_state=0
        ).fit(X_train, y_train)
        assert r2_score(y_test, model.predict(X_test)) > 0.8

    def test_learns_linear_signal(self, linear_data):
        X, y, _, _ = linear_data
        model = MLPRegressor(max_iter=200, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_loss_decreases(self, regression_data):
        X_train, y_train, _, _ = regression_data
        model = MLPRegressor(max_iter=50, random_state=0).fit(X_train, y_train)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_deterministic_for_seed(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        a = MLPRegressor(max_iter=20, random_state=7).fit(X_train, y_train)
        b = MLPRegressor(max_iter=20, random_state=7).fit(X_train, y_train)
        assert np.array_equal(a.predict(X_test), b.predict(X_test))

    def test_tanh_activation_works(self, regression_data):
        X_train, y_train, X_test, y_test = regression_data
        model = MLPRegressor(
            activation="tanh", max_iter=150, random_state=0
        ).fit(X_train, y_train)
        assert r2_score(y_test, model.predict(X_test)) > 0.6

    def test_handles_huge_feature_scales(self, rng):
        """The maintenance features span 1e4..1e6; internal scaling copes."""
        X = np.column_stack(
            [rng.uniform(0, 2e6, 300), rng.uniform(0, 3e4, 300)]
        )
        y = X[:, 0] / 2e4 + X[:, 1] / 3e3
        model = MLPRegressor(max_iter=150, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9


class TestEarlyStopping:
    def test_stops_on_plateau(self, rng):
        X = rng.normal(size=(500, 3))
        y = X[:, 0]
        model = MLPRegressor(
            max_iter=1000,
            early_stopping=True,
            n_iter_no_change=5,
            random_state=0,
        ).fit(X, y)
        assert model.n_iter_ < 1000

    def test_without_early_stopping_runs_all_epochs(self, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0]
        model = MLPRegressor(max_iter=17, random_state=0).fit(X, y)
        assert model.n_iter_ == 17


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"hidden_layer_sizes": ()}, "hidden_layer_sizes"),
            ({"hidden_layer_sizes": (0,)}, "hidden_layer_sizes"),
            ({"activation": "sigmoid"}, "activation"),
            ({"learning_rate": 0.0}, "learning_rate"),
            ({"max_iter": 0}, "max_iter"),
            ({"batch_size": 0}, "batch_size"),
            ({"alpha": -1.0}, "alpha"),
        ],
    )
    def test_invalid_hyperparams(self, rng, kwargs, match):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match=match):
            MLPRegressor(**kwargs).fit(X, np.zeros(10))

    def test_unfitted_predict(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.zeros((1, 2)))

    def test_feature_count_checked(self, rng):
        X = rng.normal(size=(30, 2))
        model = MLPRegressor(max_iter=5, random_state=0).fit(X, X[:, 0])
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((2, 5)))

    def test_clone_roundtrip(self):
        model = MLPRegressor(hidden_layer_sizes=(8,), alpha=0.01)
        fresh = clone(model)
        assert fresh.hidden_layer_sizes == (8,)
        assert fresh.alpha == 0.01


class TestRegistryIntegration:
    def test_mlp_registered_as_extension(self):
        from repro.core.registry import ALGORITHMS, PAPER_ALGORITHM_ORDER

        assert "MLP" in ALGORITHMS
        assert "MLP" not in PAPER_ALGORITHM_ORDER

    def test_mlp_predictor_on_maintenance_data(self):
        from repro.core.cycles import derive_series
        from repro.core.registry import make_predictor
        from repro.dataprep.transformation import build_relational_dataset

        usage = np.full(60, 20_000.0)
        dataset = build_relational_dataset(
            derive_series(usage, 200_000.0), window=0
        )
        predictor = make_predictor("MLP")
        predictor.fit(dataset)
        pred = predictor.predict(dataset.X)
        assert np.abs(pred - dataset.y).mean() < 2.0
