"""Unit tests for repro.learn.forest (RandomForestRegressor)."""

import numpy as np
import pytest

from repro.learn.forest import RandomForestRegressor
from repro.learn.metrics import r2_score
from repro.learn.tree import DecisionTreeRegressor


class TestFitPredict:
    def test_beats_single_tree_on_noisy_data(self, regression_data):
        X_train, y_train, X_test, y_test = regression_data
        tree = DecisionTreeRegressor(random_state=0).fit(X_train, y_train)
        forest = RandomForestRegressor(
            n_estimators=40, random_state=0
        ).fit(X_train, y_train)
        assert r2_score(y_test, forest.predict(X_test)) > r2_score(
            y_test, tree.predict(X_test)
        )

    def test_prediction_is_tree_average(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=7, random_state=3
        ).fit(X_train, y_train)
        manual = np.mean(
            [t.predict(X_test) for t in forest.estimators_], axis=0
        )
        assert np.allclose(forest.predict(X_test), manual)

    def test_n_estimators_respected(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        forest = RandomForestRegressor(n_estimators=13, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 13

    def test_deterministic_for_seed(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        a = RandomForestRegressor(n_estimators=10, random_state=5).fit(
            X_train, y_train
        )
        b = RandomForestRegressor(n_estimators=10, random_state=5).fit(
            X_train, y_train
        )
        assert np.array_equal(a.predict(X_test), b.predict(X_test))

    def test_different_seeds_differ(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        a = RandomForestRegressor(n_estimators=10, random_state=1).fit(
            X_train, y_train
        )
        b = RandomForestRegressor(n_estimators=10, random_state=2).fit(
            X_train, y_train
        )
        assert not np.array_equal(a.predict(X_test), b.predict(X_test))


class TestBootstrapAndOob:
    def test_no_bootstrap_with_all_features_gives_identical_trees(self, rng):
        X = rng.normal(size=(100, 3))
        y = X[:, 0] * 2
        forest = RandomForestRegressor(
            n_estimators=5, bootstrap=False, max_features=None, random_state=0
        ).fit(X, y)
        preds = [t.predict(X) for t in forest.estimators_]
        for p in preds[1:]:
            assert np.allclose(p, preds[0])

    def test_oob_score_reasonable(self, regression_data):
        X_train, y_train, _, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=60, random_state=0, oob_score=True
        ).fit(X_train, y_train)
        assert 0.5 < forest.oob_score_ <= 1.0
        assert forest.oob_prediction_.shape == y_train.shape

    def test_oob_requires_bootstrap(self, rng):
        X = rng.normal(size=(20, 1))
        y = rng.normal(size=20)
        with pytest.raises(ValueError, match="bootstrap"):
            RandomForestRegressor(bootstrap=False, oob_score=True).fit(X, y)

    def test_oob_less_optimistic_than_train_score(self, regression_data):
        X_train, y_train, _, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=60, random_state=0, oob_score=True
        ).fit(X_train, y_train)
        assert forest.oob_score_ < forest.score(X_train, y_train)


class TestHyperparams:
    def test_max_depth_forwarded(self, rng):
        X = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        forest = RandomForestRegressor(
            n_estimators=5, max_depth=2, random_state=0
        ).fit(X, y)
        assert all(t.get_depth() <= 2 for t in forest.estimators_)

    def test_invalid_n_estimators(self, rng):
        X = rng.normal(size=(10, 1))
        y = rng.normal(size=10)
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestRegressor(n_estimators=0).fit(X, y)

    def test_feature_importances_normalized(self, regression_data):
        X_train, y_train, _, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=15, random_state=0
        ).fit(X_train, y_train)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        assert (forest.feature_importances_ >= 0).all()


class TestPredictQuantiles:
    def test_shape_and_ordering(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=30, random_state=0
        ).fit(X_train, y_train)
        bands = forest.predict_quantiles(X_test, quantiles=(0.1, 0.5, 0.9))
        assert bands.shape == (len(X_test), 3)
        assert np.all(bands[:, 0] <= bands[:, 1])
        assert np.all(bands[:, 1] <= bands[:, 2])

    def test_median_near_point_prediction(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=60, random_state=0
        ).fit(X_train, y_train)
        median = forest.predict_quantiles(X_test, quantiles=(0.5,))[:, 0]
        point = forest.predict(X_test)
        assert np.abs(median - point).mean() < np.abs(point).mean()

    def test_wider_bands_on_noisier_targets(self, rng):
        X = rng.uniform(-1, 1, size=(400, 2))
        quiet = X[:, 0]
        noisy = X[:, 0] + rng.normal(0, 2.0, 400)
        def band_width(y):
            forest = RandomForestRegressor(
                n_estimators=40, random_state=0
            ).fit(X, y)
            bands = forest.predict_quantiles(X, quantiles=(0.1, 0.9))
            return float(np.mean(bands[:, 1] - bands[:, 0]))
        assert band_width(noisy) > band_width(quiet)

    def test_invalid_quantiles(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        forest = RandomForestRegressor(
            n_estimators=5, random_state=0
        ).fit(X_train, y_train)
        with pytest.raises(ValueError, match="quantiles"):
            forest.predict_quantiles(X_test, quantiles=(1.5,))
        with pytest.raises(ValueError):
            forest.predict_quantiles(X_test, quantiles=())
