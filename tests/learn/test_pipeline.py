"""Unit tests for repro.learn.pipeline."""

import numpy as np
import pytest

from repro.learn.base import clone
from repro.learn.linear import LinearRegression, Ridge
from repro.learn.pipeline import Pipeline, make_pipeline
from repro.learn.preprocessing import MinMaxScaler, StandardScaler
from repro.learn.svm import LinearSVR


class TestPipelineFitPredict:
    def test_scaling_then_regression(self, rng):
        X = rng.normal(1e6, 1e5, size=(100, 2))  # huge scale
        y = (X[:, 0] - 1e6) / 1e5
        pipe = Pipeline(
            [("scale", StandardScaler()), ("model", LinearRegression())]
        ).fit(X, y)
        assert pipe.score(X, y) > 0.99

    def test_equivalent_to_manual_chain(self, rng):
        X = rng.normal(size=(80, 3))
        y = X[:, 0] * 2
        pipe = Pipeline(
            [("scale", StandardScaler()), ("model", Ridge(alpha=0.1))]
        ).fit(X, y)
        scaler = StandardScaler().fit(X)
        model = Ridge(alpha=0.1).fit(scaler.transform(X), y)
        assert np.allclose(
            pipe.predict(X), model.predict(scaler.transform(X))
        )

    def test_transform_only_pipeline(self, rng):
        X = rng.normal(size=(20, 2))
        pipe = Pipeline(
            [("a", StandardScaler()), ("b", MinMaxScaler())]
        ).fit(X)
        out = pipe.transform(X)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_predict_before_fit(self, rng):
        pipe = Pipeline([("m", LinearRegression())])
        with pytest.raises(Exception):
            pipe.predict(rng.normal(size=(2, 1)))


class TestPipelineParams:
    def test_nested_get_params(self):
        pipe = Pipeline([("svr", LinearSVR(C=3.0))])
        assert pipe.get_params()["svr__C"] == 3.0

    def test_nested_set_params(self):
        pipe = Pipeline([("svr", LinearSVR())])
        pipe.set_params(svr__C=9.0)
        assert pipe.steps[0][1].C == 9.0

    def test_invalid_step_name_in_set_params(self):
        pipe = Pipeline([("svr", LinearSVR())])
        with pytest.raises(ValueError, match="Invalid parameter"):
            pipe.set_params(nope__C=1.0)

    def test_clone_keeps_structure(self):
        pipe = Pipeline(
            [("scale", StandardScaler()), ("svr", LinearSVR(C=2.0))]
        )
        fresh = clone(pipe)
        assert fresh.steps[1][1].C == 2.0
        assert fresh.steps[1][1] is not pipe.steps[1][1]

    def test_fit_does_not_mutate_template_steps(self, rng):
        scaler = StandardScaler()
        pipe = Pipeline([("scale", scaler), ("m", LinearRegression())])
        X = rng.normal(size=(30, 1))
        pipe.fit(X, X[:, 0])
        # fit() clones each step, so the original template stays unfitted.
        assert not hasattr(scaler, "offset_")


class TestPipelineValidation:
    def test_duplicate_names_rejected(self, rng):
        pipe = Pipeline([("a", StandardScaler()), ("a", LinearRegression())])
        with pytest.raises(ValueError, match="unique"):
            pipe.fit(rng.normal(size=(5, 1)), np.zeros(5))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Pipeline([]).fit(np.zeros((2, 1)), np.zeros(2))

    def test_intermediate_must_transform(self, rng):
        pipe = Pipeline(
            [("m", LinearRegression()), ("scale", StandardScaler())]
        )
        with pytest.raises(TypeError, match="transform"):
            pipe.fit(rng.normal(size=(5, 1)), np.zeros(5))

    def test_dunder_in_name_rejected(self, rng):
        pipe = Pipeline([("a__b", LinearRegression())])
        with pytest.raises(ValueError, match="Invalid step name"):
            pipe.fit(rng.normal(size=(5, 1)), np.zeros(5))


class TestMakePipeline:
    def test_auto_names(self):
        pipe = make_pipeline(StandardScaler(), LinearRegression())
        names = [name for name, _ in pipe.steps]
        assert names == ["standardscaler", "linearregression"]

    def test_duplicate_types_get_suffixes(self):
        pipe = make_pipeline(StandardScaler(), StandardScaler())
        names = [name for name, _ in pipe.steps]
        assert names == ["standardscaler", "standardscaler-2"]
