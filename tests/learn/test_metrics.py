"""Unit tests for repro.learn.metrics."""

import numpy as np
import pytest

from repro.learn.metrics import (
    explained_variance_score,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    r2_score,
    residuals,
    root_mean_squared_error,
)


class TestBasicMetrics:
    def test_mse_known_value(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 5]) == pytest.approx(4 / 3)

    def test_rmse_is_sqrt_of_mse(self):
        y, p = [0, 0, 0], [3, 0, 0]
        assert root_mean_squared_error(y, p) == pytest.approx(
            np.sqrt(mean_squared_error(y, p))
        )

    def test_mae_known_value(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)

    def test_median_ae_robust_to_outlier(self):
        y = [0, 0, 0, 0, 0]
        p = [1, 1, 1, 1, 100]
        assert median_absolute_error(y, p) == 1.0

    def test_max_error(self):
        assert max_error([1, 2, 3], [1, 0, 3]) == 2.0

    def test_mape(self):
        assert mean_absolute_percentage_error([10, 20], [11, 18]) == (
            pytest.approx((0.1 + 0.1) / 2)
        )

    def test_residuals_signed(self):
        out = residuals([3, 1], [1, 3])
        assert np.array_equal(out, [2, -2])

    def test_perfect_prediction_zero_error(self):
        y = np.arange(10.0)
        assert mean_squared_error(y, y) == 0.0
        assert mean_absolute_error(y, y) == 0.0
        assert max_error(y, y) == 0.0


class TestR2:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.full(3, y.mean())
        assert r2_score(y, p) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.array([3.0, 2.0, 1.0])
        assert r2_score(y, p) < 0

    def test_constant_target_conventions(self):
        y = np.ones(4)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0


class TestExplainedVariance:
    def test_bias_ignored(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        # A constant offset leaves residual variance at zero.
        assert explained_variance_score(y, y + 10) == pytest.approx(1.0)

    def test_r2_penalizes_bias_but_ev_does_not(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, y + 10) < explained_variance_score(y, y + 10)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        from repro.learn.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            mean_squared_error([1, 2], [1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_column_vector_accepted(self):
        out = mean_absolute_error(np.array([[1.0], [2.0]]), [1.0, 2.0])
        assert out == 0.0
