"""Unit tests for repro.learn.linear."""

import numpy as np
import pytest

from repro.learn.exceptions import NotFittedError
from repro.learn.linear import LinearRegression, Ridge


class TestLinearRegression:
    def test_recovers_exact_coefficients(self, linear_data):
        X, y, coef, intercept = linear_data
        model = LinearRegression().fit(X, y)
        assert model.coef_ == pytest.approx(coef, abs=1e-6)
        assert model.intercept_ == pytest.approx(intercept, abs=1e-6)

    def test_predict_matches_formula(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        manual = X @ model.coef_ + model.intercept_
        assert np.allclose(model.predict(X), manual)

    def test_no_intercept_goes_through_origin(self, rng):
        X = rng.normal(size=(100, 2))
        y = X @ np.array([1.5, -2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_ == pytest.approx([1.5, -2.0], abs=1e-8)

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])

    def test_feature_count_mismatch(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((2, X.shape[1] + 1)))

    def test_collinear_features_do_not_crash(self, rng):
        x = rng.normal(size=100)
        X = np.column_stack([x, x, x])  # rank 1
        y = 2 * x + 1
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-6)

    def test_single_feature(self, rng):
        X = rng.normal(size=(50, 1))
        y = 3 * X[:, 0] - 1
        model = LinearRegression().fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0)


class TestRidge:
    def test_zero_alpha_equals_ols(self, linear_data):
        X, y, _, _ = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        assert ridge.coef_ == pytest.approx(ols.coef_, abs=1e-8)

    def test_shrinkage_reduces_norm(self, rng):
        X = rng.normal(size=(80, 4))
        y = X @ np.array([5.0, -4.0, 3.0, -2.0]) + rng.normal(0, 0.5, 80)
        small = Ridge(alpha=0.01).fit(X, y)
        large = Ridge(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalized(self, rng):
        X = rng.normal(size=(200, 2))
        y = np.zeros(200) + 100.0  # constant target far from origin
        model = Ridge(alpha=1e6).fit(X, y)
        # Heavy penalty kills the slope, but the intercept stays at the mean.
        assert model.intercept_ == pytest.approx(100.0, abs=1e-6)
        assert np.allclose(model.coef_, 0.0, atol=1e-3)

    def test_negative_alpha_rejected(self, linear_data):
        X, y, _, _ = linear_data
        with pytest.raises(ValueError, match="alpha"):
            Ridge(alpha=-1.0).fit(X, y)

    def test_stabilizes_collinear_problem(self, rng):
        x = rng.normal(size=100)
        X = np.column_stack([x, x + rng.normal(0, 1e-10, 100)])
        y = x
        model = Ridge(alpha=1.0).fit(X, y)
        assert np.all(np.isfinite(model.coef_))
        assert np.abs(model.coef_).max() < 10.0
