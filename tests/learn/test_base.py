"""Unit tests for the estimator protocol (repro.learn.base)."""

import numpy as np
import pytest

from repro.learn.base import BaseEstimator, clone
from repro.learn.forest import RandomForestRegressor
from repro.learn.linear import LinearRegression, Ridge
from repro.learn.svm import LinearSVR


class Toy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta

    def fit(self, X, y):
        self.fitted_ = True
        return self


class Outer(BaseEstimator):
    def __init__(self, inner=None, gamma=0.5):
        self.inner = inner
        self.gamma = gamma


class TestGetParams:
    def test_returns_constructor_args(self):
        assert Toy(alpha=2.0).get_params() == {"alpha": 2.0, "beta": "x"}

    def test_deep_includes_nested(self):
        outer = Outer(inner=Toy(alpha=3.0))
        params = outer.get_params(deep=True)
        assert params["inner__alpha"] == 3.0
        assert params["gamma"] == 0.5

    def test_shallow_excludes_nested_keys(self):
        outer = Outer(inner=Toy())
        assert "inner__alpha" not in outer.get_params(deep=False)


class TestSetParams:
    def test_sets_own_params(self):
        toy = Toy().set_params(alpha=5.0)
        assert toy.alpha == 5.0

    def test_sets_nested_params(self):
        outer = Outer(inner=Toy())
        outer.set_params(inner__alpha=9.0)
        assert outer.inner.alpha == 9.0

    def test_invalid_param_rejected(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            Toy().set_params(nope=1)

    def test_empty_call_is_noop(self):
        toy = Toy(alpha=2.0)
        assert toy.set_params() is toy
        assert toy.alpha == 2.0


class TestRepr:
    def test_defaults_hidden(self):
        assert repr(Toy()) == "Toy()"

    def test_non_defaults_shown(self):
        assert "alpha=7.0" in repr(Toy(alpha=7.0))


class TestClone:
    def test_clone_is_unfitted_copy(self):
        toy = Toy(alpha=4.0)
        toy.fit(None, None)
        fresh = clone(toy)
        assert fresh.alpha == 4.0
        assert not hasattr(fresh, "fitted_")
        assert fresh is not toy

    def test_clone_list(self):
        clones = clone([Toy(alpha=1.0), Toy(alpha=2.0)])
        assert [c.alpha for c in clones] == [1.0, 2.0]

    def test_clone_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            clone(42)

    def test_clone_deepcopies_mutable_params(self):
        grid = {"a": [1, 2]}
        toy = Toy(alpha=grid)
        fresh = clone(toy)
        fresh.alpha["a"].append(3)
        assert toy.alpha == {"a": [1, 2]}


@pytest.mark.parametrize(
    "estimator",
    [
        LinearRegression(),
        Ridge(alpha=0.3),
        LinearSVR(C=2.0),
        RandomForestRegressor(n_estimators=3, random_state=0),
    ],
)
class TestProtocolCompliance:
    """Every real estimator must round-trip its params through clone."""

    def test_params_roundtrip(self, estimator):
        params = estimator.get_params(deep=False)
        rebuilt = type(estimator)(**params)
        assert rebuilt.get_params(deep=False).keys() == params.keys()

    def test_clone_preserves_params(self, estimator):
        fresh = clone(estimator)
        for key, value in estimator.get_params(deep=False).items():
            got = getattr(fresh, key)
            if isinstance(value, np.ndarray):
                assert np.array_equal(got, value)
            else:
                assert got == value

    def test_score_after_fit(self, estimator, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0] * 2 + 1
        estimator = clone(estimator)
        estimator.fit(X, y)
        assert estimator.score(X, y) > 0.5
