"""Unit tests for repro.learn.dummy."""

import numpy as np
import pytest

from repro.learn.dummy import DummyRegressor


class TestDummyRegressor:
    def test_mean_strategy(self, rng):
        X = rng.normal(size=(10, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
        model = DummyRegressor().fit(X, y)
        assert np.all(model.predict(X) == 5.5)

    def test_median_strategy(self, rng):
        X = rng.normal(size=(5, 1))
        y = np.array([0.0, 0.0, 0.0, 0.0, 100.0])
        model = DummyRegressor(strategy="median").fit(X, y)
        assert np.all(model.predict(X) == 0.0)

    def test_constant_strategy(self, rng):
        X = rng.normal(size=(3, 2))
        model = DummyRegressor(strategy="constant", constant=42.0).fit(
            X, np.zeros(3)
        )
        assert np.all(model.predict(X) == 42.0)

    def test_constant_requires_value(self, rng):
        X = rng.normal(size=(3, 1))
        with pytest.raises(ValueError, match="constant"):
            DummyRegressor(strategy="constant").fit(X, np.zeros(3))

    def test_unknown_strategy(self, rng):
        X = rng.normal(size=(3, 1))
        with pytest.raises(ValueError, match="strategy"):
            DummyRegressor(strategy="mode").fit(X, np.zeros(3))

    def test_prediction_length_follows_input(self, rng):
        model = DummyRegressor().fit(rng.normal(size=(5, 1)), np.ones(5))
        assert model.predict(rng.normal(size=(17, 1))).shape == (17,)
