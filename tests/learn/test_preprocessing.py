"""Unit tests for repro.learn.preprocessing."""

import numpy as np
import pytest

from repro.learn.exceptions import NotFittedError
from repro.learn.preprocessing import MinMaxScaler, RobustScaler, StandardScaler


class TestMinMaxScaler:
    def test_maps_to_unit_range(self, rng):
        X = rng.normal(10, 5, size=(100, 3))
        out = MinMaxScaler().fit_transform(X)
        assert out.min(axis=0) == pytest.approx([0, 0, 0])
        assert out.max(axis=0) == pytest.approx([1, 1, 1])

    def test_custom_range(self, rng):
        X = rng.normal(size=(50, 2))
        out = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        assert out.min() == pytest.approx(-1)
        assert out.max() == pytest.approx(1)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(30, 4))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = MinMaxScaler().fit_transform(X)
        assert np.allclose(out[:, 0], 0.0)

    def test_clip_on_unseen_extremes(self):
        X_train = np.array([[0.0], [10.0]])
        scaler = MinMaxScaler(clip=True).fit(X_train)
        out = scaler.transform(np.array([[-5.0], [15.0]]))
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_no_clip_extrapolates(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="feature_range"):
            MinMaxScaler(feature_range=(1, 1)).fit(np.zeros((3, 1)))


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(7, 3, size=(500, 2))
        out = StandardScaler().fit_transform(X)
        assert out.mean(axis=0) == pytest.approx([0, 0], abs=1e-10)
        assert out.std(axis=0) == pytest.approx([1, 1], abs=1e-10)

    def test_without_mean(self, rng):
        X = rng.normal(5, 1, size=(100, 1))
        out = StandardScaler(with_mean=False).fit_transform(X)
        assert out.mean() > 1.0  # mean untouched, only scaled

    def test_without_std(self, rng):
        X = rng.normal(5, 3, size=(100, 1))
        out = StandardScaler(with_std=False).fit_transform(X)
        assert out.std() == pytest.approx(X.std())

    def test_constant_column_safe(self):
        X = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out[:, 0], 0.0)
        assert np.isfinite(out).all()

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(40, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)


class TestRobustScaler:
    def test_centers_on_median(self, rng):
        X = rng.normal(size=(200, 1))
        X[0, 0] = 1e6  # outlier should barely matter
        out = RobustScaler().fit_transform(X)
        assert abs(np.median(out)) < 1e-10

    def test_less_outlier_sensitive_than_standard(self, rng):
        X = rng.normal(size=(200, 1))
        X_dirty = X.copy()
        X_dirty[0, 0] = 1e6
        robust = RobustScaler().fit(X_dirty)
        standard = StandardScaler().fit(X_dirty)
        # The standard scale explodes with the outlier; robust does not.
        assert robust.scale_[0] < standard.scale_[0]

    def test_invalid_quantiles(self):
        with pytest.raises(ValueError, match="quantile_range"):
            RobustScaler(quantile_range=(80, 20)).fit(np.zeros((5, 1)))


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "scaler", [MinMaxScaler(), StandardScaler(), RobustScaler()]
    )
    def test_transform_before_fit(self, scaler):
        with pytest.raises(NotFittedError):
            scaler.transform(np.zeros((2, 1)))

    @pytest.mark.parametrize(
        "scaler", [MinMaxScaler(), StandardScaler(), RobustScaler()]
    )
    def test_feature_count_checked(self, scaler, rng):
        scaler.fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(rng.normal(size=(3, 5)))
