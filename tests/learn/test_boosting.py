"""Unit tests for repro.learn.boosting."""

import numpy as np
import pytest

from repro.learn.boosting import BinMapper, HistGradientBoostingRegressor
from repro.learn.metrics import r2_score


class TestBinMapper:
    def test_few_distinct_values_one_bin_each(self):
        X = np.array([[0.0], [0.0], [1.0], [2.0], [2.0]])
        mapper = BinMapper(max_bins=8).fit(X)
        binned = mapper.transform(X)
        assert binned[0, 0] == binned[1, 0]
        assert binned[3, 0] == binned[4, 0]
        assert len(np.unique(binned)) == 3

    def test_monotone_in_value(self, rng):
        X = rng.normal(size=(500, 1))
        mapper = BinMapper(max_bins=32).fit(X)
        binned = mapper.transform(X).ravel()
        order = np.argsort(X.ravel())
        assert np.all(np.diff(binned[order].astype(int)) >= 0)

    def test_max_bins_respected(self, rng):
        X = rng.normal(size=(10_000, 1))
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X)
        assert binned.max() < 16

    def test_transform_requires_fit(self):
        with pytest.raises(Exception):
            BinMapper().transform(np.zeros((2, 1)))

    def test_feature_count_mismatch(self, rng):
        mapper = BinMapper().fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="features"):
            mapper.transform(rng.normal(size=(5, 3)))

    @pytest.mark.parametrize("bad", [1, 257, 0])
    def test_invalid_max_bins(self, bad):
        with pytest.raises(ValueError, match="max_bins"):
            BinMapper(max_bins=bad)


class TestBoostingFit:
    def test_strong_on_nonlinear_signal(self, regression_data):
        X_train, y_train, X_test, y_test = regression_data
        model = HistGradientBoostingRegressor(
            max_iter=120, random_state=0
        ).fit(X_train, y_train)
        assert r2_score(y_test, model.predict(X_test)) > 0.9

    def test_train_loss_decreases(self, regression_data):
        X_train, y_train, _, _ = regression_data
        model = HistGradientBoostingRegressor(max_iter=50).fit(X_train, y_train)
        losses = model.train_score_
        assert losses[-1] < losses[0]
        # Mostly monotone: allow rare tiny upticks from shrinkage.
        assert np.sum(np.diff(losses) > 1e-9) <= 2

    def test_single_iteration_is_baseline_plus_one_tree(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = HistGradientBoostingRegressor(max_iter=1).fit(X, y)
        assert model.n_iter_ == 1
        assert len(model.estimators_) == 1

    def test_learning_rate_scales_steps(self, regression_data):
        X_train, y_train, _, _ = regression_data
        slow = HistGradientBoostingRegressor(
            max_iter=10, learning_rate=0.01
        ).fit(X_train, y_train)
        fast = HistGradientBoostingRegressor(
            max_iter=10, learning_rate=0.5
        ).fit(X_train, y_train)
        # After few rounds the slow learner stays near the mean baseline.
        assert slow.train_score_[-1] > fast.train_score_[-1]

    def test_max_leaf_nodes_respected(self, regression_data):
        X_train, y_train, _, _ = regression_data
        model = HistGradientBoostingRegressor(
            max_iter=5, max_leaf_nodes=4
        ).fit(X_train, y_train)
        assert all(t.n_leaves <= 4 for t in model.estimators_)

    def test_constant_target_predicts_constant(self, rng):
        X = rng.normal(size=(50, 2))
        y = np.full(50, 3.5)
        model = HistGradientBoostingRegressor(max_iter=10).fit(X, y)
        assert np.allclose(model.predict(X), 3.5)


class TestEarlyStopping:
    def test_stops_before_max_iter_on_plateau(self, rng):
        X = rng.normal(size=(400, 2))
        y = X[:, 0]  # trivially learnable
        model = HistGradientBoostingRegressor(
            max_iter=500,
            early_stopping=True,
            n_iter_no_change=5,
            random_state=0,
        ).fit(X, y)
        assert model.n_iter_ < 500
        assert model.validation_score_ is not None

    def test_no_early_stopping_runs_full(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = HistGradientBoostingRegressor(max_iter=20).fit(X, y)
        assert model.n_iter_ == 20
        assert model.validation_score_ is None


class TestHyperparamValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"learning_rate": 0.0}, "learning_rate"),
            ({"max_iter": 0}, "max_iter"),
            ({"max_leaf_nodes": 1}, "max_leaf_nodes"),
            ({"max_depth": 0}, "max_depth"),
            ({"min_samples_leaf": 0}, "min_samples_leaf"),
            ({"l2_regularization": -1.0}, "l2_regularization"),
        ],
    )
    def test_rejected(self, rng, kwargs, match):
        X = rng.normal(size=(20, 1))
        y = rng.normal(size=20)
        with pytest.raises(ValueError, match=match):
            HistGradientBoostingRegressor(**kwargs).fit(X, y)

    def test_max_depth_respected_via_prediction_granularity(self, rng):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = np.sin(8 * X[:, 0])
        shallow = HistGradientBoostingRegressor(
            max_iter=1, max_depth=1, learning_rate=1.0
        ).fit(X, y)
        # A depth-1 tree yields at most 2 distinct leaf adjustments.
        assert len(np.unique(shallow.predict(X))) <= 2

    def test_determinism_without_early_stopping(self, regression_data):
        X_train, y_train, X_test, _ = regression_data
        a = HistGradientBoostingRegressor(max_iter=30).fit(X_train, y_train)
        b = HistGradientBoostingRegressor(max_iter=30).fit(X_train, y_train)
        assert np.array_equal(a.predict(X_test), b.predict(X_test))
