"""Unit tests for repro.learn.validation."""

import numpy as np
import pytest

from repro.learn.exceptions import DataValidationError, NotFittedError
from repro.learn.validation import (
    check_array,
    check_consistent_length,
    check_is_fitted,
    check_random_state,
    check_X_y,
    column_or_1d,
)


class TestCheckArray:
    def test_accepts_2d_list(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d_when_ensure_2d(self):
        with pytest.raises(DataValidationError, match="2-dimensional"):
            check_array([1.0, 2.0])

    def test_allows_1d_when_not_ensure_2d(self):
        out = check_array([1.0, 2.0], ensure_2d=False)
        assert out.shape == (2,)

    def test_rejects_3d(self):
        with pytest.raises(DataValidationError, match="at most 2"):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError, match="NaN"):
            check_array([[np.inf, 1.0]])

    def test_allow_nan_passes_through(self):
        out = check_array([[np.nan, 1.0]], allow_nan=True)
        assert np.isnan(out[0, 0])

    def test_min_samples(self):
        with pytest.raises(DataValidationError, match="at least 3"):
            check_array([[1.0], [2.0]], min_samples=3)

    def test_name_in_message(self):
        with pytest.raises(DataValidationError, match="features"):
            check_array([1.0], name="features")


class TestColumnOr1d:
    def test_flattens_column_vector(self):
        out = column_or_1d(np.array([[1.0], [2.0]]))
        assert out.shape == (2,)

    def test_keeps_1d(self):
        out = column_or_1d([1.0, 2.0, 3.0])
        assert out.shape == (3,)

    def test_rejects_wide_matrix(self):
        with pytest.raises(DataValidationError):
            column_or_1d(np.zeros((3, 2)))


class TestCheckXy:
    def test_happy_path(self):
        X, y = check_X_y([[1.0], [2.0]], [3.0, 4.0])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError, match="Inconsistent"):
            check_X_y([[1.0], [2.0]], [3.0])

    def test_nan_target_rejected(self):
        with pytest.raises(DataValidationError):
            check_X_y([[1.0]], [np.nan])


class TestCheckConsistentLength:
    def test_passes_on_equal(self):
        check_consistent_length([1, 2], [3, 4], None)

    def test_fails_on_unequal(self):
        with pytest.raises(DataValidationError):
            check_consistent_length([1, 2], [3])


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).integers(0, 1000, 5)
        b = check_random_state(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert check_random_state(gen) is gen

    def test_legacy_random_state_converted(self):
        legacy = np.random.RandomState(3)
        assert isinstance(check_random_state(legacy), np.random.Generator)

    def test_invalid_seed_rejected(self):
        with pytest.raises(DataValidationError):
            check_random_state("not a seed")


class TestCheckIsFitted:
    def test_unfitted_raises(self):
        class Model:
            pass

        with pytest.raises(NotFittedError, match="not fitted"):
            check_is_fitted(Model())

    def test_trailing_underscore_marks_fitted(self):
        class Model:
            pass

        model = Model()
        model.coef_ = [1.0]
        check_is_fitted(model)

    def test_explicit_attributes(self):
        class Model:
            pass

        model = Model()
        model.a_ = 1
        with pytest.raises(NotFittedError):
            check_is_fitted(model, ["a_", "b_"])
        model.b_ = 2
        check_is_fitted(model, ["a_", "b_"])

    def test_notfitted_is_attributeerror(self):
        # getattr-probing callers rely on this inheritance.
        assert issubclass(NotFittedError, AttributeError)
