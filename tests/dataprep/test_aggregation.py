"""Unit tests for repro.dataprep.aggregation."""

import numpy as np
import pytest

from repro.dataprep.aggregation import (
    SECONDS_PER_DAY,
    aggregate_daily_to_weekly,
    aggregate_reports_daily,
)
from repro.telemetry.controller import UsageReport


def report(start, seconds, vehicle="v01"):
    return UsageReport(
        vehicle_id=vehicle,
        period_start=start,
        period_end=start + 3600.0,
        working_seconds=seconds,
        engine_hours_total=0.0,
        signal_stats={},
    )


class TestReportAggregation:
    def test_single_report(self):
        series = aggregate_reports_daily([report(0.0, 1000.0)])
        assert np.array_equal(series, [1000.0])

    def test_same_day_sums(self):
        series = aggregate_reports_daily(
            [report(0.0, 1000.0), report(7200.0, 500.0)]
        )
        assert series[0] == 1500.0

    def test_uncovered_days_are_nan(self):
        series = aggregate_reports_daily(
            [report(0.0, 100.0), report(SECONDS_PER_DAY * 2, 200.0)]
        )
        assert np.isnan(series[1])

    def test_explicit_n_days_truncates_and_pads(self):
        reports = [report(SECONDS_PER_DAY * 5, 100.0)]
        short = aggregate_reports_daily(reports, n_days=3)
        assert short.shape == (3,)
        assert np.isnan(short).all()
        padded = aggregate_reports_daily(reports, n_days=10)
        assert padded[5] == 100.0

    def test_empty_input(self):
        assert aggregate_reports_daily([]).shape == (0,)

    def test_invalid_period_rejected(self):
        bad = UsageReport(
            vehicle_id="v01",
            period_start=100.0,
            period_end=50.0,
            working_seconds=10.0,
            engine_hours_total=0.0,
            signal_stats={},
        )
        with pytest.raises(ValueError, match="period_end"):
            aggregate_reports_daily([bad])

    def test_negative_n_days_rejected(self):
        with pytest.raises(ValueError):
            aggregate_reports_daily([], n_days=-1)


class TestWeeklyAggregation:
    def test_full_weeks(self):
        daily = np.arange(14.0)
        weekly = aggregate_daily_to_weekly(daily)
        assert weekly.shape == (2,)
        assert weekly[0] == sum(range(7))
        assert weekly[1] == sum(range(7, 14))

    def test_partial_trailing_week(self):
        weekly = aggregate_daily_to_weekly(np.ones(10))
        assert weekly.shape == (2,)
        assert weekly[1] == 3.0

    def test_nan_propagates(self):
        daily = np.ones(7)
        daily[3] = np.nan
        assert np.isnan(aggregate_daily_to_weekly(daily)[0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            aggregate_daily_to_weekly(np.zeros((2, 7)))
