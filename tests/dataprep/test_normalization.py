"""Unit tests for repro.dataprep.normalization."""

import numpy as np
import pytest

from repro.dataprep.normalization import (
    SECONDS_PER_DAY,
    UtilizationNormalizer,
    scale_by_capacity,
)


class TestCapacityScaling:
    def test_full_day_maps_to_one(self):
        assert scale_by_capacity([SECONDS_PER_DAY])[0] == 1.0

    def test_stateless(self):
        out = scale_by_capacity([43_200.0, 0.0])
        assert np.array_equal(out, [0.5, 0.0])

    def test_normalizer_capacity_mode_needs_no_fit(self):
        norm = UtilizationNormalizer("capacity")
        out = norm.transform(np.array([21_600.0]))
        assert out[0] == 0.25

    def test_inverse(self):
        norm = UtilizationNormalizer("capacity")
        usage = np.array([10_000.0, 50_000.0])
        assert np.allclose(norm.inverse_transform(norm.transform(usage)), usage)


class TestMinMaxMode:
    def test_fit_transform_unit_range(self, rng):
        usage = rng.uniform(0, 30_000, 100)
        norm = UtilizationNormalizer("minmax")
        out = norm.fit_transform(usage)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_train_range_applied_to_test(self):
        norm = UtilizationNormalizer("minmax").fit(np.array([0.0, 10_000.0]))
        out = norm.transform(np.array([5_000.0, 20_000.0]))
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(2.0)  # beyond training max

    def test_use_before_fit_raises(self):
        norm = UtilizationNormalizer("minmax")
        with pytest.raises(RuntimeError, match="fit"):
            norm.transform(np.array([1.0]))
        with pytest.raises(RuntimeError):
            norm.inverse_transform(np.array([1.0]))

    def test_inverse_roundtrip(self, rng):
        usage = rng.uniform(0, 40_000, 50)
        norm = UtilizationNormalizer("minmax").fit(usage)
        assert np.allclose(norm.inverse_transform(norm.transform(usage)), usage)


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            UtilizationNormalizer("zscore")

    def test_fit_requires_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            UtilizationNormalizer("minmax").fit(np.zeros((2, 2)))
