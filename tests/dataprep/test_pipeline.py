"""Unit tests for repro.dataprep.pipeline (the five-step chain)."""

import numpy as np
import pytest

from repro.dataprep.pipeline import DataPreparationPipeline
from repro.telemetry.cloud import SECONDS_PER_DAY
from repro.telemetry.controller import UsageReport


def make_reports(daily_seconds):
    """One report per day with the given working seconds."""
    return [
        UsageReport(
            vehicle_id="v01",
            period_start=day * SECONDS_PER_DAY,
            period_end=day * SECONDS_PER_DAY + 3600,
            working_seconds=seconds,
            engine_hours_total=0.0,
            signal_stats={},
        )
        for day, seconds in enumerate(daily_seconds)
    ]


class TestPrepareDaily:
    def test_happy_path(self):
        raw = np.full(30, 20_000.0)
        prepared = DataPreparationPipeline().prepare_daily("v01", raw, 2e5)
        assert prepared.vehicle_id == "v01"
        assert prepared.series.t_v == 2e5
        assert prepared.cleaning_report.fraction_touched == 0.0
        assert len(prepared.series.completed_cycles) == 3

    def test_dirty_input_cleaned(self):
        raw = np.full(30, 20_000.0)
        raw[3] = np.nan
        raw[7] = -500.0
        raw[9] = 100_000.0
        prepared = DataPreparationPipeline().prepare_daily("v01", raw, 2e5)
        assert np.isfinite(prepared.usage).all()
        assert prepared.usage.min() >= 0
        assert prepared.usage.max() <= 86_400
        assert prepared.cleaning_report.n_missing == 1
        assert prepared.cleaning_report.n_inconsistent == 2

    def test_policies_forwarded(self):
        raw = np.array([100.0, np.nan, 300.0])
        prepared = DataPreparationPipeline(
            missing_policy="interpolate"
        ).prepare_daily("v01", raw, 1e5)
        assert prepared.usage[1] == pytest.approx(200.0)

    def test_relational_builder(self):
        raw = np.full(30, 20_000.0)
        prepared = DataPreparationPipeline().prepare_daily("v01", raw, 2e5)
        ds = prepared.relational(window=2)
        assert ds.X.shape[1] == 3
        assert ds.n_records > 0

    def test_relational_augmented_builder(self):
        raw = np.full(40, 20_000.0)
        prepared = DataPreparationPipeline().prepare_daily("v01", raw, 2e5)
        base = prepared.relational(window=0)
        augmented = prepared.relational_augmented(window=0, n_shifts=3, rng=0)
        assert augmented.n_records > base.n_records


class TestPrepareReports:
    def test_telemetry_path(self):
        reports = make_reports([20_000.0] * 25)
        prepared = DataPreparationPipeline().prepare_reports(
            "v01", reports, t_v=2e5
        )
        assert prepared.series.n_days == 25
        assert np.allclose(prepared.usage, 20_000.0)

    def test_missing_days_filled(self):
        reports = make_reports([20_000.0] * 10)
        del reports[4]
        prepared = DataPreparationPipeline().prepare_reports(
            "v01", reports, t_v=2e5, n_days=10
        )
        assert prepared.usage[4] == 0.0
        assert prepared.cleaning_report.n_missing == 1


class TestPrepareFleet:
    def test_every_vehicle_prepared(self, small_fleet):
        prepared = DataPreparationPipeline().prepare_fleet(small_fleet)
        assert set(prepared) == set(small_fleet.vehicle_ids)
        for vehicle_id, pv in prepared.items():
            assert pv.series.vehicle_id == vehicle_id
            assert pv.series.n_days == small_fleet[vehicle_id].n_days
