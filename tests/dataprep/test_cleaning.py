"""Unit tests for repro.dataprep.cleaning."""

import numpy as np
import pytest

from repro.dataprep.cleaning import clean_daily_usage


class TestMissingPolicies:
    def test_zero_policy(self):
        clean, report = clean_daily_usage([100.0, np.nan, 300.0])
        assert np.array_equal(clean, [100.0, 0.0, 300.0])
        assert report.n_missing == 1

    def test_interpolate_policy(self):
        clean, _ = clean_daily_usage(
            [100.0, np.nan, 300.0], missing_policy="interpolate"
        )
        assert clean[1] == pytest.approx(200.0)

    def test_interpolate_extends_edges(self):
        clean, _ = clean_daily_usage(
            [np.nan, 100.0, np.nan], missing_policy="interpolate"
        )
        assert clean[0] == 100.0
        assert clean[2] == 100.0

    def test_ffill_policy(self):
        clean, _ = clean_daily_usage(
            [np.nan, 500.0, np.nan, np.nan], missing_policy="ffill"
        )
        assert np.array_equal(clean, [0.0, 500.0, 500.0, 500.0])

    def test_all_missing_becomes_zero(self):
        for policy in ("zero", "interpolate", "ffill"):
            clean, report = clean_daily_usage(
                [np.nan, np.nan], missing_policy=policy
            )
            assert np.array_equal(clean, [0.0, 0.0])
            assert report.n_missing == 2

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="missing policy"):
            clean_daily_usage([1.0], missing_policy="magic")


class TestInconsistentPolicies:
    def test_clip_negative_to_zero(self):
        clean, report = clean_daily_usage([-50.0, 100.0])
        assert clean[0] == 0.0
        assert report.n_negative == 1

    def test_clip_overflow_to_day(self):
        clean, report = clean_daily_usage([100_000.0])
        assert clean[0] == 86_400.0
        assert report.n_overflow == 1

    def test_null_policy_demotes_then_fills(self):
        clean, report = clean_daily_usage(
            [100_000.0, 200.0],
            inconsistent_policy="null",
            missing_policy="interpolate",
        )
        assert clean[0] == pytest.approx(200.0)
        assert report.n_overflow == 1

    def test_infinity_treated_as_inconsistent(self):
        clean, _ = clean_daily_usage([np.inf, 100.0])
        assert np.isfinite(clean).all()

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="inconsistent policy"):
            clean_daily_usage([1.0], inconsistent_policy="wish")


class TestReport:
    def test_counts(self):
        raw = [np.nan, -5.0, 100_000.0, 500.0]
        _, report = clean_daily_usage(raw)
        assert report.n_days == 4
        assert report.n_missing == 1
        assert report.n_negative == 1
        assert report.n_overflow == 1
        assert report.n_inconsistent == 2
        assert report.fraction_touched == pytest.approx(3 / 4)

    def test_clean_input_untouched(self):
        raw = [100.0, 200.0, 0.0]
        clean, report = clean_daily_usage(raw)
        assert np.array_equal(clean, raw)
        assert report.fraction_touched == 0.0

    def test_output_always_valid_range(self, rng):
        raw = rng.normal(40_000, 60_000, size=200)
        raw[::7] = np.nan
        clean, _ = clean_daily_usage(raw)
        assert clean.min() >= 0.0
        assert clean.max() <= 86_400.0
        assert np.isfinite(clean).all()

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            clean_daily_usage(np.zeros((2, 2)))
