"""Unit tests for repro.dataprep.transformation."""

import numpy as np
import pytest

from repro.core.cycles import derive_series
from repro.dataprep.transformation import (
    RelationalDataset,
    augment_with_time_shifts,
    build_relational_dataset,
    feature_names_for_window,
)


@pytest.fixture
def steady_bundle():
    """20 000 s/day, T_v = 200 000: a maintenance exactly every 10 days."""
    usage = np.full(35, 20_000.0)
    return derive_series(usage, 200_000.0)


class TestFeatureNames:
    def test_univariate(self):
        assert feature_names_for_window(0) == ["L(t)"]

    def test_multivariate(self):
        assert feature_names_for_window(2) == ["L(t)", "U(t-1)", "U(t-2)"]


class TestBuildDataset:
    def test_univariate_layout(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, window=0)
        assert ds.X.shape[1] == 1
        assert ds.window == 0
        # Labeled days: 3 completed cycles of 10 days = 30 records.
        assert ds.n_records == 30

    def test_window_shrinks_valid_days(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, window=5)
        # Days 0-4 lack a full lag window.
        assert ds.t_index.min() == 5
        assert ds.X.shape[1] == 6

    def test_lag_columns_contain_past_usage(self):
        usage = np.arange(1.0, 21.0) * 1000.0  # distinct values per day
        bundle = derive_series(usage, 30_000.0)
        ds = build_relational_dataset(bundle, window=3, require_labels=False)
        row = np.nonzero(ds.t_index == 10)[0][0]
        assert ds.X[row, 1] == usage[9]  # U(t-1)
        assert ds.X[row, 2] == usage[8]
        assert ds.X[row, 3] == usage[7]

    def test_l_column_matches_equation_one(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, window=0)
        for row in range(ds.n_records):
            t = ds.t_index[row]
            assert ds.X[row, 0] == steady_bundle.usage_left[t]

    def test_labels_are_days_to_maintenance(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, window=0)
        expected = steady_bundle.days_to_maintenance[ds.t_index]
        assert np.array_equal(ds.y, expected)

    def test_require_labels_false_includes_open_cycle(self, steady_bundle):
        labeled = build_relational_dataset(steady_bundle, 0)
        unlabeled = build_relational_dataset(
            steady_bundle, 0, require_labels=False
        )
        assert unlabeled.n_records > labeled.n_records
        assert np.isnan(unlabeled.y).any()

    def test_day_range_carves_subset(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, 0, day_range=(10, 20))
        assert ds.t_index.min() >= 10
        assert ds.t_index.max() < 20

    def test_empty_range_gives_empty_dataset(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, 0, day_range=(5, 5))
        assert ds.n_records == 0

    def test_invalid_inputs(self, steady_bundle):
        with pytest.raises(ValueError, match="window"):
            build_relational_dataset(steady_bundle, -1)
        with pytest.raises(ValueError, match="day_range"):
            build_relational_dataset(steady_bundle, 0, day_range=(0, 999))


class TestHorizonRestriction:
    def test_only_near_deadline_records_kept(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, 0)
        restricted = ds.restrict_to_horizon(range(1, 4))
        assert set(restricted.y.astype(int)) <= {1, 2, 3}
        assert restricted.n_records == 9  # 3 days x 3 cycles

    def test_empty_horizon_rejected(self, steady_bundle):
        ds = build_relational_dataset(steady_bundle, 0)
        with pytest.raises(ValueError):
            ds.restrict_to_horizon([])


class TestConcatenate:
    def test_stacks_records(self, steady_bundle):
        a = build_relational_dataset(steady_bundle, 0, day_range=(0, 15))
        b = build_relational_dataset(steady_bundle, 0, day_range=(15, 35))
        merged = RelationalDataset.concatenate([a, b])
        assert merged.n_records == a.n_records + b.n_records

    def test_mixed_windows_rejected(self, steady_bundle):
        a = build_relational_dataset(steady_bundle, 0)
        b = build_relational_dataset(steady_bundle, 1)
        with pytest.raises(ValueError, match="mixed windows"):
            RelationalDataset.concatenate([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            RelationalDataset.concatenate([])


class TestTimeShiftAugmentation:
    def test_no_shifts_equals_base(self):
        usage = np.full(35, 20_000.0)
        base = build_relational_dataset(derive_series(usage, 2e5), 0)
        augmented = augment_with_time_shifts(usage, 2e5, 0, n_shifts=0)
        assert augmented.n_records == base.n_records

    def test_shifts_add_records(self):
        usage = np.full(60, 20_000.0)
        augmented = augment_with_time_shifts(
            usage, 2e5, 0, n_shifts=4, rng=0
        )
        base = build_relational_dataset(derive_series(usage, 2e5), 0)
        assert augmented.n_records > base.n_records

    def test_shifted_labels_remain_valid(self):
        """A shifted record's label must match the shifted derivation.

        The shift changes cycle boundaries, so labels differ from the
        natural reference — but each one must still satisfy the cycle
        arithmetic of its own shifted frame (spot-checked via ranges).
        """
        usage = np.full(60, 20_000.0)
        augmented = augment_with_time_shifts(usage, 2e5, 0, n_shifts=5, rng=1)
        # Every label is a valid day count for a 10-day cycle.
        assert augmented.y.min() >= 0
        assert augmented.y.max() <= 10

    def test_max_shift_bounds_draws(self):
        usage = np.full(60, 20_000.0)
        with pytest.raises(ValueError, match="too short"):
            augment_with_time_shifts(usage, 2e5, 0, n_shifts=2, max_shift=1)

    def test_negative_shifts_rejected(self):
        with pytest.raises(ValueError, match="n_shifts"):
            augment_with_time_shifts(np.ones(10), 100.0, 0, n_shifts=-1)

    def test_deterministic_for_seed(self):
        usage = np.full(50, 20_000.0)
        a = augment_with_time_shifts(usage, 2e5, 0, n_shifts=3, rng=9)
        b = augment_with_time_shifts(usage, 2e5, 0, n_shifts=3, rng=9)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)
