"""Unit tests for repro.dataprep.enrichment."""

import numpy as np
import pytest

from repro.dataprep.enrichment import (
    enrich_usage,
    rolling_mean,
    rolling_std,
)


class TestRollingStats:
    def test_rolling_mean_known_values(self):
        out = rolling_mean([1.0, 2.0, 3.0, 4.0], window=2)
        assert np.allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_rolling_mean_short_prefix(self):
        out = rolling_mean([10.0, 20.0], window=5)
        assert np.allclose(out, [10.0, 15.0])

    def test_rolling_mean_window_one_is_identity(self):
        series = np.array([3.0, 1.0, 4.0])
        assert np.array_equal(rolling_mean(series, 1), series)

    def test_rolling_std_constant_is_zero(self):
        assert np.allclose(rolling_std(np.full(10, 5.0), 3), 0.0)

    def test_rolling_std_matches_numpy(self, rng):
        series = rng.normal(size=20)
        out = rolling_std(series, 4)
        assert out[10] == pytest.approx(series[7:11].std())

    @pytest.mark.parametrize("fn", [rolling_mean, rolling_std])
    def test_invalid_window(self, fn):
        with pytest.raises(ValueError, match="window"):
            fn([1.0, 2.0], 0)


class TestEnrichUsage:
    def test_bundle_attached(self, steady_series):
        enriched = enrich_usage(steady_series.usage, steady_series.t_v)
        assert enriched.t_v == steady_series.t_v
        assert enriched.days_to_maintenance.shape == (35,)
        assert enriched.usage_left.shape == (35,)
        assert enriched.days_since_maintenance.shape == (35,)

    def test_rolling_series_aligned(self, steady_series):
        enriched = enrich_usage(steady_series.usage, steady_series.t_v)
        assert enriched.rolling_mean_7.shape == enriched.usage.shape
        assert np.allclose(enriched.rolling_mean_7, 20_000.0)
        assert np.allclose(enriched.rolling_std_7, 0.0)

    def test_matches_direct_derivation(self, steady_series):
        from repro.core.cycles import derive_series

        enriched = enrich_usage(steady_series.usage, steady_series.t_v)
        direct = derive_series(steady_series.usage, steady_series.t_v)
        assert np.array_equal(
            enriched.days_to_maintenance,
            direct.days_to_maintenance,
            equal_nan=True,
        )
