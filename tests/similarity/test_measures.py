"""Unit tests for repro.similarity.measures."""

import numpy as np
import pytest

from repro.similarity.measures import (
    MEASURES,
    average_usage_distance,
    correlation_distance,
    euclidean_distance,
    most_similar,
    pointwise_average_distance,
    resolve_measure,
)


class TestPointwiseAverageDistance:
    def test_identity_is_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert pointwise_average_distance(a, a) == 0.0

    def test_known_value(self):
        assert pointwise_average_distance([0.0, 0.0], [1.0, 3.0]) == 2.0

    def test_unequal_lengths_use_overlap(self):
        assert pointwise_average_distance([1.0, 1.0, 99.0], [1.0, 1.0]) == 0.0

    def test_symmetric(self, rng):
        a = rng.normal(size=10)
        b = rng.normal(size=10)
        assert pointwise_average_distance(a, b) == pointwise_average_distance(b, a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pointwise_average_distance([], [1.0])


class TestAverageUsageDistance:
    def test_same_mean_is_zero(self):
        assert average_usage_distance([0.0, 10.0], [5.0, 5.0]) == 0.0

    def test_known_value(self):
        assert average_usage_distance([0.0], [7.0]) == 7.0

    def test_length_insensitive(self):
        # Means compare directly; no alignment involved.
        assert average_usage_distance([4.0] * 3, [4.0] * 100) == 0.0


class TestEuclidean:
    def test_known_value(self):
        assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == 5.0


class TestCorrelationDistance:
    def test_perfectly_correlated_is_zero(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert correlation_distance(a, 10 * a + 5) == pytest.approx(0.0)

    def test_anticorrelated_is_two(self):
        a = np.array([1.0, 2.0, 3.0])
        assert correlation_distance(a, -a) == pytest.approx(2.0)

    def test_constant_series_defined(self):
        assert correlation_distance([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 1.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            correlation_distance([1.0], [2.0])


class TestResolveMeasure:
    def test_by_name(self):
        assert resolve_measure("euclidean") is euclidean_distance

    def test_callable_passthrough(self):
        fn = lambda a, b: 0.0
        assert resolve_measure(fn) is fn

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="Unknown measure"):
            resolve_measure("cosine")

    def test_all_registered_measures_resolve(self):
        for name in MEASURES:
            resolve_measure(name)


class TestMostSimilar:
    def test_picks_minimum_distance(self):
        target = np.array([10.0, 10.0, 10.0])
        candidates = {
            "far": np.array([100.0, 100.0, 100.0]),
            "near": np.array([11.0, 9.0, 10.0]),
        }
        key, distance = most_similar(target, candidates)
        assert key == "near"
        assert distance == pytest.approx(2.0 / 3.0)

    def test_tie_breaks_on_sorted_key(self):
        target = np.zeros(3)
        candidates = {"b": np.zeros(3), "a": np.zeros(3)}
        key, _ = most_similar(target, candidates)
        assert key == "a"

    def test_custom_measure(self):
        target = np.array([5.0])
        candidates = {"x": np.array([4.0]), "y": np.array([6.0])}
        key, _ = most_similar(
            target, candidates, measure=lambda a, b: float(b[0])
        )
        assert key == "x"

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            most_similar(np.zeros(2), {})
