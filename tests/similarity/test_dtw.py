"""Unit tests for repro.similarity.dtw."""

import numpy as np
import pytest

from repro.similarity.dtw import dtw_distance, dtw_path


class TestDtwDistance:
    def test_identity_is_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert dtw_distance(a, a) == 0.0

    def test_time_shift_cheaper_than_euclidean(self):
        a = np.array([0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0])  # shifted copy
        assert dtw_distance(a, b) < np.abs(a - b).sum()
        assert dtw_distance(a, b) == pytest.approx(0.0)

    def test_known_small_case(self):
        # Align [0, 2] with [0, 1, 2]: path 0-0, 2-1?? optimal is
        # (0,0),(1,1),(1,2) -> |0-0| + |2-1| + |2-2| = 1.
        assert dtw_distance([0.0, 2.0], [0.0, 1.0, 2.0]) == 1.0

    def test_symmetry(self, rng):
        a = rng.normal(size=8)
        b = rng.normal(size=11)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_window_constraint_increases_or_keeps_cost(self, rng):
        a = rng.normal(size=15)
        b = rng.normal(size=15)
        unconstrained = dtw_distance(a, b)
        banded = dtw_distance(a, b, window=1)
        assert banded >= unconstrained - 1e-12

    def test_window_auto_widens_for_unequal_lengths(self):
        # window=0 would forbid any path between different lengths; the
        # implementation widens it to the length gap.
        value = dtw_distance([1.0, 2.0, 3.0, 4.0], [1.0, 4.0], window=0)
        assert np.isfinite(value)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0], [1.0], window=-1)


class TestDtwPath:
    def test_path_endpoints(self):
        path = dtw_path([1.0, 2.0, 3.0], [1.0, 3.0])
        assert path[0] == (0, 0)
        assert path[-1] == (2, 1)

    def test_path_monotone(self, rng):
        a = rng.normal(size=6)
        b = rng.normal(size=9)
        path = dtw_path(a, b)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert i2 >= i1 and j2 >= j1
            assert (i2 - i1) + (j2 - j1) >= 1

    def test_path_cost_matches_distance(self):
        a = np.array([0.0, 1.0, 2.0, 1.0])
        b = np.array([0.0, 2.0, 1.0])
        path = dtw_path(a, b)
        cost = sum(abs(a[i] - b[j]) for i, j in path)
        assert cost == pytest.approx(dtw_distance(a, b))

    def test_single_point_path(self):
        assert dtw_path([5.0], [7.0]) == [(0, 0)]
