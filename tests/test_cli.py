"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGenerateAndCalibrate:
    def test_generate_writes_fleet(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--vehicles",
                "3",
                "--seed",
                "1",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet_usage.csv" in out
        assert "3 vehicles" in out
        assert (tmp_path / "fleet_usage.csv").exists()
        assert (tmp_path / "fleet_meta.json").exists()

    def test_calibrate_from_saved_fleet(self, tmp_path, capsys):
        main(["generate", "--vehicles", "3", "--output", str(tmp_path)])
        capsys.readouterr()
        code = main(["calibrate", "--input", str(tmp_path)])
        assert code == 0
        assert "working-day mean" in capsys.readouterr().out

    def test_calibrate_without_input_generates(self, capsys):
        code = main(["calibrate", "--vehicles", "3", "--seed", "2"])
        assert code == 0
        assert "3 vehicles" in capsys.readouterr().out


class TestEvaluate:
    def test_table1_small(self, capsys):
        code = main(
            [
                "evaluate",
                "table1",
                "--vehicles",
                "6",
                "--old-vehicles",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "BL" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "table9"])


class TestPredict:
    def test_predict_trained_vehicle(self, tmp_path, capsys):
        main(["generate", "--vehicles", "3", "--output", str(tmp_path)])
        capsys.readouterr()
        code = main(
            [
                "predict",
                "--input",
                str(tmp_path),
                "--vehicle",
                "v01",
                "--algorithm",
                "XGB",
                "--window",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "days to maint." in out
        assert "predicted due" in out

    def test_unknown_vehicle_errors(self, tmp_path, capsys):
        main(["generate", "--vehicles", "2", "--output", str(tmp_path)])
        capsys.readouterr()
        code = main(
            ["predict", "--input", str(tmp_path), "--vehicle", "v99"]
        )
        assert code == 2
        assert "Unknown vehicle" in capsys.readouterr().err


class TestChaos:
    def test_chaos_run_self_verifies(self, capsys):
        code = main(
            ["chaos", "--seed", "7", "--vehicles", "3", "--days", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet health" in out or "readings flagged" in out
        assert "[ok]" in out
        assert "FAIL" not in out

    def test_chaos_is_deterministic(self, capsys):
        argv = ["chaos", "--seed", "11", "--vehicles", "2", "--days", "25"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


    def test_chaos_json_output(self, capsys):
        import json

        code = main(
            [
                "chaos",
                "--seed",
                "7",
                "--vehicles",
                "3",
                "--days",
                "30",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(payload["checks"].values())
        assert payload["forecasts"], "last round of forecasts serialized"
        for forecast in payload["forecasts"]:
            assert {"vehicle_id", "category", "strategy", "degraded"} <= set(
                forecast
            )
        assert "vehicles" in payload["health"]


class TestMaxWorkersValidation:
    @pytest.mark.parametrize("bad", ["0", "-2"])
    def test_evaluate_rejects_non_positive(self, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", "table1", "--max-workers", bad])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_evaluate_rejects_non_integer(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", "table1", "--max-workers", "two"])
        assert exc.value.code == 2
        assert "expected an integer" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag", ["--max-workers", "--max-queue", "--max-batch"]
    )
    def test_serve_rejects_non_positive(self, flag, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", flag, "0"])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for command in (
            "generate",
            "calibrate",
            "evaluate",
            "predict",
            "chaos",
            "serve",
        ):
            assert command in out
