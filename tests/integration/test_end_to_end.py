"""Integration tests across the whole stack.

telemetry (frames -> controller -> cloud) -> dataprep (clean, aggregate,
enrich, transform) -> core (train, predict) -> planner (schedule).
"""

import datetime as dt

import numpy as np
import pytest

from repro.core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from repro.core.planner import FleetMaintenancePlanner
from repro.core.predictors import BaselinePredictor
from repro.core.registry import make_predictor
from repro.core.series import VehicleSeries
from repro.dataprep.pipeline import DataPreparationPipeline
from repro.telemetry.canbus import CANBus, SignalTrafficGenerator
from repro.telemetry.cloud import SECONDS_PER_DAY, CloudStore
from repro.telemetry.controller import OnboardController


class TestTelemetryToDataprep:
    """Drive CAN frames through the full acquisition chain."""

    def test_frames_to_daily_series(self):
        # 5 days, 4 working hours per day at a coarse sampling rate.
        generator = SignalTrafficGenerator(sample_rate_hz=0.5, seed=0)
        controller = OnboardController("v01", report_interval_s=6 * 3600.0)
        store = CloudStore(seed=0)
        for day in range(5):
            start = day * SECONDS_PER_DAY
            controller.process_frames(
                generator.generate_window(start, 4 * 3600.0, working=True)
            )
            controller.process_frames(
                generator.generate_window(
                    start + 4 * 3600.0, 3600.0, working=False
                )
            )
        store.ingest_many(controller.flush(now=5 * SECONDS_PER_DAY))

        raw = store.daily_usage_array("v01", n_days=5)
        prepared = DataPreparationPipeline().prepare_daily(
            "v01", raw, t_v=50_000.0
        )
        # Roughly 4 working hours a day survived the whole chain.
        working_days = prepared.usage[prepared.usage > 0]
        assert len(working_days) >= 4
        assert working_days.mean() == pytest.approx(4 * 3600.0, rel=0.15)

    def test_lossy_chain_still_produces_clean_series(self):
        generator = SignalTrafficGenerator(sample_rate_hz=0.5, seed=1)
        bus = CANBus(drop_probability=0.2, corrupt_probability=0.05, seed=1)
        controller = OnboardController("v02", report_interval_s=3 * 3600.0)
        store = CloudStore(loss_probability=0.2, duplicate_probability=0.1, seed=1)

        for day in range(6):
            start = day * SECONDS_PER_DAY
            for frame in generator.generate_window(
                start, 2 * 3600.0, working=True
            ):
                bus.send(frame)
            controller.process_frames(bus.drain())
        store.ingest_many(controller.flush(now=6 * SECONDS_PER_DAY))

        raw = store.daily_usage_array("v02", n_days=6)
        prepared = DataPreparationPipeline().prepare_daily(
            "v02", raw, t_v=50_000.0
        )
        assert np.isfinite(prepared.usage).all()
        assert prepared.usage.min() >= 0.0
        assert prepared.usage.max() <= 86_400.0


class TestFleetToPrediction:
    def test_simulated_fleet_through_methodology(self, small_fleet):
        prepared = DataPreparationPipeline().prepare_fleet(small_fleet)
        series = [pv.series for pv in prepared.values()]
        experiment = OldVehicleExperiment(
            OldVehicleConfig(window=3, restrict_to_horizon=True)
        )
        result = experiment.run_fleet(series, "XGB")
        assert np.isfinite(result.e_mre)
        assert result.e_mre < 15.0  # sane scale, paper-magnitude errors

    def test_prediction_to_planner(self, small_fleet):
        vehicle = small_fleet.vehicles[0]
        series = VehicleSeries.from_vehicle(vehicle)
        cut = int(0.7 * series.n_days)
        from repro.dataprep.transformation import build_relational_dataset

        train = build_relational_dataset(series.bundle, 0, day_range=(0, cut))
        predictor = make_predictor("XGB")
        predictor.fit(train)
        planner = FleetMaintenancePlanner(daily_capacity=1, horizon_days=365)
        forecast = planner.forecast_vehicle(series, predictor, window=0)
        schedule = planner.build_schedule([forecast], dt.date(2017, 4, 1))
        assert len(schedule) == 1
        assert schedule[0].vehicle_id == vehicle.vehicle_id


class TestCsvRoundtripThroughMethodology:
    def test_saved_fleet_reproduces_results(self, small_fleet, tmp_path):
        from repro.fleet.io import load_fleet, save_fleet

        save_fleet(small_fleet, tmp_path)
        loaded = load_fleet(tmp_path)
        original = VehicleSeries.from_vehicle(small_fleet.vehicles[0])
        restored = VehicleSeries.from_vehicle(loaded.vehicles[0])
        experiment = OldVehicleExperiment(OldVehicleConfig(window=0))
        a = experiment.run_vehicle(original, "LR")
        b = experiment.run_vehicle(restored, "LR")
        assert a.e_mre == pytest.approx(b.e_mre, abs=1e-6)
