"""Shape assertions for the paper's headline claims, at reduced scale.

These are the reproduction's acceptance tests: they assert the *relative*
results the paper reports (who wins, what helps), not absolute numbers.
The full-scale runs that print paper-style tables live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentSetup
from repro.experiments.figure4 import run_figure4
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(fast=True, n_old_vehicles=6)


@pytest.fixture(scope="module")
def table1(setup):
    return run_table1(setup)


@pytest.fixture(scope="module")
def figure4(setup):
    return run_figure4(
        setup, algorithms=("BL", "LR", "RF", "XGB"), windows=(0, 6, 12)
    )


@pytest.fixture(scope="module")
def table3(setup):
    return run_table3(setup)


class TestTable1Claims:
    def test_restriction_cuts_ml_error_substantially(self, table1):
        """Paper: 48-65 % error reduction from last-29-days training."""
        for key in ("LR", "LSVR", "RF", "XGB"):
            assert table1.row(key).reduction_pct > 30.0

    def test_bl_worst_after_restriction(self, table1):
        bl = table1.row("BL").e_mre_restricted
        for key in ("LR", "LSVR", "RF", "XGB"):
            assert table1.row(key).e_mre_restricted < bl

    def test_bl_beats_all_data_lr(self, table1):
        """Paper Table 1: LR trained on all data (26.1) loses to BL (20.2)."""
        assert table1.row("BL").e_mre_all_data < table1.row("LR").e_mre_all_data


class TestFigure4Claims:
    def test_ensembles_improve_with_lags(self, figure4):
        """Paper: RF +44 %, XGB +25 % from the feature window."""
        improvement = figure4.improvement()
        for key in ("RF", "XGB"):
            best = max(improvement[key].values())
            assert best > 10.0

    def test_bl_flat(self, figure4):
        assert all(v == 0.0 for v in figure4.improvement()["BL"].values())

    def test_nonlinear_beat_linear_at_best_windows(self, figure4):
        best = {
            key: min(figure4.e_mre[key].values())
            for key in ("LR", "RF", "XGB")
        }
        assert best["RF"] < best["LR"]
        assert best["XGB"] < best["LR"]


class TestTable3Claims:
    def test_bl_collapses_for_semi_new(self, table3):
        """Paper: BL = 34.9 vs ML <= 8.8 — own-history averages mislead."""
        bl = table3.semi_new_e_mre["BL"]
        ml = [v for k, v in table3.semi_new_e_mre.items() if k != "BL"]
        assert bl > min(ml) * 1.5
        assert bl == max(
            v for v in table3.semi_new_e_mre.values() if np.isfinite(v)
        )

    def test_nonlinear_sim_best_for_semi_new(self, table3):
        """Paper: RF_Sim (2.9) best, with non-linear models leading."""
        best = table3.best_semi_new()
        assert best in {"RF_Sim", "XGB_Sim", "RF_Uni", "XGB_Uni"}

    def test_similarity_helps_nonlinear_models(self, table3):
        """Paper: RF_Sim (2.9) <= RF_Uni (3.2)."""
        assert (
            table3.semi_new_e_mre["RF_Sim"]
            <= table3.semi_new_e_mre["RF_Uni"] * 1.1
        )

    def test_new_vehicle_errors_larger_than_semi_new(self, table3):
        """Cold start with zero history is the hardest setting."""
        best_new = min(table3.new_e_global.values())
        best_semi = min(
            v for v in table3.semi_new_e_mre.values() if np.isfinite(v)
        )
        assert best_new > best_semi
