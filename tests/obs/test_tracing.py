"""Tests for trace spans: lifecycle, context propagation, ring bounds."""

import threading

import pytest

from repro.obs import Tracer, activate, add_event, current_span, span


class TestNoOpPaths:
    def test_no_active_span_by_default(self):
        assert current_span() is None

    def test_child_span_without_parent_is_free(self):
        with span("orphan") as child:
            assert child is None
        add_event("ignored")  # must not raise

    def test_activate_none_yields_none(self):
        with activate(None) as active:
            assert active is None

    def test_disabled_tracer_starts_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_trace("r1", "GET /x") is None
        assert tracer.stats()["traces_started"] == 0


class TestSpanLifecycle:
    def test_root_child_event_export(self):
        tracer = Tracer()
        root = tracer.start_trace("req-1", "GET /v1/predict/v00", endpoint="predict")
        with activate(root):
            with span("engine.predict", vehicle_id="v00") as child:
                add_event("enqueued", queue_depth=3)
                assert current_span() is child
        root.finish("ok")

        trace = tracer.export("req-1")
        assert trace["request_id"] == "req-1"
        names = [s["name"] for s in trace["spans"]]
        assert names == ["GET /v1/predict/v00", "engine.predict"]
        root_dict, child_dict = trace["spans"]
        assert root_dict["parent_id"] is None
        assert child_dict["parent_id"] == root_dict["span_id"]
        assert child_dict["status"] == "ok"
        assert child_dict["events"][0]["name"] == "enqueued"
        assert child_dict["events"][0]["attributes"] == {"queue_depth": 3}

    def test_exception_marks_span_and_reraises(self):
        tracer = Tracer()
        root = tracer.start_trace("req-err", "GET /x")
        with activate(root):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("nope")
        root.finish("ok")
        statuses = {
            s["name"]: s["status"]
            for s in tracer.export("req-err")["spans"]
        }
        assert statuses["boom"] == "error: RuntimeError"

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        root = tracer.start_trace("req-2", "GET /x")
        root.finish("ok")
        root.finish("error: late")  # ignored
        spans = tracer.export("req-2")["spans"]
        assert len(spans) == 1
        assert spans[0]["status"] == "ok"

    def test_unknown_request_id_exports_none(self):
        assert Tracer().export("nope") is None


class TestPropagation:
    def test_activate_carries_span_into_worker_thread(self):
        tracer = Tracer()
        root = tracer.start_trace("req-3", "GET /x")
        seen = {}

        def worker():
            with activate(root):
                with span("worker-op") as child:
                    seen["parent"] = child.parent_id
            # outside activate the thread has no active span again
            seen["after"] = current_span()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.finish("ok")
        assert seen["parent"] == root.span_id
        assert seen["after"] is None

    def test_concurrent_threads_do_not_leak_spans(self):
        tracer = Tracer()
        roots = {
            name: tracer.start_trace(name, f"GET /{name}")
            for name in ("req-a", "req-b")
        }
        observed = {}
        barrier = threading.Barrier(2)

        def worker(name):
            with activate(roots[name]):
                barrier.wait()  # both threads hold their span at once
                observed[name] = current_span().request_id

        threads = [
            threading.Thread(target=worker, args=(name,)) for name in roots
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert observed == {"req-a": "req-a", "req-b": "req-b"}


class TestRingBounds:
    def test_oldest_trace_evicted(self):
        tracer = Tracer(capacity=2)
        for i in range(3):
            root = tracer.start_trace(f"req-{i}", "GET /x")
            root.finish("ok")
        assert tracer.export("req-0") is None
        assert tracer.export("req-2") is not None
        stats = tracer.stats()
        assert stats["traces_started"] == 3
        assert stats["traces_evicted"] == 1
        assert stats["traces_held"] == 2

    def test_reused_request_id_replaces_trace(self):
        tracer = Tracer()
        first = tracer.start_trace("req-x", "GET /a")
        first.finish("ok")
        second = tracer.start_trace("req-x", "GET /b")
        second.finish("ok")
        spans = tracer.export("req-x")["spans"]
        assert [s["name"] for s in spans] == ["GET /b"]

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
