"""Tests for the ring-buffer event log and its JSON-lines export."""

import json

import pytest

from repro.obs import EventLog


def fixed_clock():
    return 1_000.123456789


class TestEmit:
    def test_seq_monotonic_and_fields_carried(self):
        log = EventLog(clock=fixed_clock)
        first = log.emit("stage", stage="train", ms=12.5)
        second = log.emit("stage", stage="predict", ms=0.8)
        assert first["seq"] == 1
        assert second["seq"] == 2
        assert first["ts"] == pytest.approx(1_000.123457)
        assert first["stage"] == "train"

    def test_ring_drops_oldest_but_counts_all(self):
        log = EventLog(capacity=3, clock=fixed_clock)
        for i in range(5):
            log.emit("tick", i=i)
        records = log.tail()
        assert [r["seq"] for r in records] == [3, 4, 5]
        stats = log.stats()
        assert stats == {
            "capacity": 3, "emitted": 5, "held": 3, "dropped": 2,
        }
        assert len(log) == 3

    def test_tail_limits(self):
        log = EventLog(clock=fixed_clock)
        for i in range(4):
            log.emit("tick", i=i)
        assert [r["seq"] for r in log.tail(2)] == [3, 4]
        assert log.tail(0) == []
        assert len(log.tail(99)) == 4

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestJsonLines:
    def test_line_format_golden(self):
        log = EventLog(clock=fixed_clock)
        log.emit("stage", stage="ingest", ms=1.25, vehicle_id="v00")
        line = log.to_jsonl()
        # Pinned line shape: compact separators, keys in emit order,
        # seq leading — downstream tails parse this without a schema.
        assert line == (
            '{"seq":1,"ts":1000.123457,"kind":"stage",'
            '"stage":"ingest","ms":1.25,"vehicle_id":"v00"}'
        )

    def test_multiline_round_trip(self):
        log = EventLog(clock=fixed_clock)
        log.emit("a", x=1)
        log.emit("b", y=[1, 2])
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "a"
        assert parsed[1]["y"] == [1, 2]
        assert all(
            list(record)[:3] == ["seq", "ts", "kind"] for record in parsed
        )
