"""Tests for the metrics registry: quantile properties + thread-safety.

The percentile estimator is the one the gateway has always served
(formerly ``gateway._percentile``); the property suite pins its
contract — monotone in ``q``, bounded by min/max, nearest-rank against
a sort-based reference — plus the edge cases the old private helper
never had to face (empty samples, single sample, duplicate-heavy).
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, percentile

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32
)
samples = st.lists(finite_floats, min_size=1, max_size=400)
quantiles = st.floats(min_value=0.0, max_value=1.0)


def reference_nearest_rank(ordered, q):
    """Sort-based nearest-rank reference: element ceil(q*n), 1-indexed."""
    n = len(ordered)
    rank = max(1, min(n, math.ceil(q * n)))
    return ordered[rank - 1]


class TestPercentileProperties:
    @given(samples, quantiles)
    @settings(max_examples=300, deadline=None)
    def test_bounded_by_min_max(self, values, q):
        ordered = sorted(values)
        result = percentile(ordered, q)
        assert ordered[0] <= result <= ordered[-1]
        assert result in ordered  # nearest-rank returns a real sample

    @given(samples)
    @settings(max_examples=300, deadline=None)
    def test_monotone_in_q(self, values):
        ordered = sorted(values)
        p50 = percentile(ordered, 0.50)
        p95 = percentile(ordered, 0.95)
        p99 = percentile(ordered, 0.99)
        assert p50 <= p95 <= p99

    @given(samples, quantiles)
    @settings(max_examples=300, deadline=None)
    def test_matches_sort_based_reference_within_one_rank(self, values, q):
        ordered = sorted(values)
        result = percentile(ordered, q)
        # round-half-even on q*n + 0.5 can land one rank either side of
        # the plain ceil-based nearest-rank reference, never further.
        n = len(ordered)
        rank = max(1, min(n, math.ceil(q * n)))  # 1-indexed reference
        lo = ordered[max(0, rank - 2)]
        hi = ordered[min(n - 1, rank)]
        assert lo <= result <= hi

    def test_exact_known_values(self):
        ordered = [float(v) for v in range(1, 101)]  # 1..100
        # round-half-even: q*n + 0.5 ties round to the even rank, so
        # p50 of 1..100 is 50 (50.5 -> 50) and p95 is 96 (95.5 -> 96).
        assert percentile(ordered, 0.50) == 50.0
        assert percentile(ordered, 0.95) == 96.0
        assert percentile(ordered, 0.99) == 100.0
        assert percentile(ordered, 0.0) == 1.0
        assert percentile(ordered, 1.0) == 100.0

    def test_single_sample_every_quantile(self):
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            assert percentile([3.25], q) == 3.25

    def test_duplicate_heavy(self):
        ordered = sorted([1.0] * 99 + [100.0])
        assert percentile(ordered, 0.50) == 1.0
        assert percentile(ordered, 0.95) == 1.0
        assert percentile(ordered, 1.0) == 100.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], -0.1)


class TestHistogram:
    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}

    def test_summary_shape_and_values(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.record(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["max"] == 100.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_reservoir_bounded_but_count_exact(self):
        histogram = Histogram(sample_cap=8)
        for value in range(100):
            histogram.record(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100  # exact even past the cap
        assert summary["max"] == 99.0
        assert summary["p50"] >= 92.0  # percentiles from the recent window

    def test_bad_cap_raises(self):
        with pytest.raises(ValueError):
            Histogram(sample_cap=0)


class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_high_water(self):
        gauge = Gauge()
        gauge.update_max(4)
        gauge.update_max(2)  # lower: no regress
        assert gauge.value == 4
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestRegistry:
    def test_handles_are_cached(self):
        registry = MetricsRegistry()
        a = registry.counter("x", endpoint="p")
        b = registry.counter("x", endpoint="p")
        c = registry.counter("x", endpoint="q")
        assert a is b
        assert a is not c

    def test_labeled_view(self):
        registry = MetricsRegistry()
        registry.counter("hits", kind="a").inc(2)
        registry.counter("hits", kind="b").inc(3)
        pairs = {
            labels["kind"]: metric.value
            for labels, metric in registry.labeled("hits")
        }
        assert pairs == {"a": 2, "b": 3}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests", endpoint="predict").inc()
        registry.gauge("depth").set(3)
        registry.histogram("latency").record(0.5)
        registry.register_collector("extra", lambda: {"k": 1})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"requests{endpoint=predict}": 1}
        assert snapshot["gauges"] == {"depth": 3}
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["extra"] == {"k": 1}

    def test_collector_name_collisions(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="reserved"):
            registry.register_collector("counters", dict)
        registry.register_collector("fleet", lambda: {"v": 1})
        with pytest.raises(ValueError, match="already registered"):
            registry.register_collector("fleet", dict)
        registry.register_collector("fleet", lambda: {"v": 2}, replace=True)
        assert registry.snapshot()["fleet"] == {"v": 2}


class TestRegistryConcurrency:
    """N threads x M increments must lose nothing, and a snapshot taken
    mid-storm must be internally consistent."""

    N_THREADS = 8
    M_INCREMENTS = 2000

    def test_counter_storm_loses_no_counts(self):
        registry = MetricsRegistry()

        def storm():
            # Re-resolve the handle each time: the get-or-create path
            # itself must be race-free, not just the increment.
            for _ in range(self.M_INCREMENTS):
                registry.counter("storm.requests", endpoint="predict").inc()

        threads = [
            threading.Thread(target=storm) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = registry.counter("storm.requests", endpoint="predict").value
        assert total == self.N_THREADS * self.M_INCREMENTS

    def test_high_water_gauge_never_regresses_under_storm(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_high_water")
        floor = threading.Event()
        observed_floor = 500  # every thread records at least this depth

        def storm(offset):
            for depth in range(1, observed_floor + 1):
                gauge.update_max(depth + offset)
            floor.set()

        threads = [
            threading.Thread(target=storm, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        floor.wait()
        # Mid-storm read: at least one thread finished, so the mark can
        # never be below the depth that thread provably recorded.
        assert gauge.value >= observed_floor
        for thread in threads:
            thread.join()
        assert gauge.value == observed_floor + self.N_THREADS - 1

    def test_snapshot_mid_storm_is_consistent(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def storm():
            while not stop.is_set():
                with registry.lock:
                    # Paired mutation: the snapshot must never observe
                    # one half without the other.
                    registry.counter("pair.a").inc()
                    registry.counter("pair.b").inc()

        threads = [threading.Thread(target=storm) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                snapshot = registry.snapshot()["counters"]
                a = snapshot.get("pair.a", 0)
                b = snapshot.get("pair.b", 0)
                assert a == b, f"snapshot tore a paired update: {a} != {b}"
        finally:
            stop.set()
            for thread in threads:
                thread.join()
