"""Setup shim for offline editable installs.

The sandboxed environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-build-isolation`` falls back to this
legacy path (``setup.py develop``), which only needs setuptools.
"""

from setuptools import setup

setup()
